"""The Ficus logical layer.

"The Ficus logical layer presents its clients ... with the abstraction
that each file has only a single copy, although it may actually have many
physical replicas.  The logical layer performs concurrency control on
logical files, and implements a replica selection algorithm in accordance
with the consistency policy in effect.  The default policy of one-copy
availability is to select the most recent copy available.  The logical
layer also oversees update propagation notification..." (Section 2.5).

One instance runs per host.  It never touches storage itself: every
access goes through a physical layer, local or across NFS, via the
:class:`~repro.logical.fabric.Fabric`.

Replica selection is driven by the structured attribute plane: each
reachable replica serves one :class:`~repro.physical.wire.AttrBatch`
(directory version vector plus every stored child's) per ``getattrs_batch``
call, and the per-host :class:`~repro.logical.attr_cache.VersionVectorCache`
keeps those batches warm between update notifications, so the hot read
path needs at most one batched RPC per replica when cold and none at all
when warm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    AllReplicasUnavailable,
    FileNotFound,
    HostUnreachable,
    InvalidArgument,
    StaleFileHandle,
)
from repro.logical.attr_cache import DEFAULT_TTL, VersionVectorCache
from repro.logical.fabric import Fabric
from repro.logical.locks import LockManager
from repro.net import Network
from repro.physical import DirectoryEntry, decode_directory, volume_root_handle
from repro.physical.wire import AttrBatch
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.util import FicusFileHandle, VolumeId, VolumeReplicaId
from repro.vnode.interface import (
    ROOT_CTX,
    FileSystemLayer,
    OpContext,
    Vnode,
    read_whole,
)
from repro.volume import GraftTable, Grafter, ReplicaLocation
from repro.vv import VersionVector

#: Replica-selection policies for reads.
READ_LATEST = "latest"  # the paper's default: most recent copy available
READ_ANY = "any"  # first reachable copy (cheaper, weaker)


@dataclass
class ReplicaView:
    """One reachable replica of a directory (or of a file through it)."""

    location: ReplicaLocation
    dir_vnode: Vnode


@dataclass
class FileReplicaView:
    """One reachable, stored replica of a regular file."""

    location: ReplicaLocation
    dir_vnode: Vnode
    vv: VersionVector


class FicusLogicalLayer(FileSystemLayer):
    """Per-host logical layer: the single-copy abstraction."""

    layer_name = "ficus-logical"

    def __init__(
        self,
        network: Network,
        host_addr: str,
        fabric: Fabric,
        graft_table: GraftTable,
        root_volume: VolumeId,
        read_policy: str = READ_LATEST,
        telemetry: Telemetry | None = None,
        attr_cache_ttl: float = DEFAULT_TTL,
    ):
        super().__init__()
        if read_policy not in (READ_LATEST, READ_ANY):
            raise InvalidArgument(f"unknown read policy {read_policy!r}")
        self.network = network
        self.host_addr = host_addr
        self.fabric = fabric
        self.graft_table = graft_table
        self.root_volume = root_volume
        self.read_policy = read_policy
        self.telemetry = telemetry or NULL_TELEMETRY
        self.grafter = Grafter(network, host_addr, telemetry=self.telemetry)
        self.locks = LockManager()
        #: volume -> known replica locations (root volume seeded from the
        #: graft table; others learned by autografting).
        self._locations: dict[VolumeId, list[ReplicaLocation]] = {}
        #: open-session pins: logical fh -> the replica taking this session
        self._session_pins: dict[FicusFileHandle, ReplicaView] = {}
        #: per-replica attribute batches, kept coherent by notification
        self.attr_cache = VersionVectorCache(network.clock, ttl=attr_cache_ttl)
        self.notifications_sent = 0
        #: this host's HealthPlane, wired by the cluster (None when disabled)
        self.health = None
        #: callable peer_host -> bool: is the peer degraded (flapping)?
        #: Wired from the daemons' PeerHealth so READ_LATEST selection
        #: stops probing flapping replicas first.
        self.degraded_probe = None
        #: replica probes deferred because the peer was degraded
        self.degraded_skips = 0
        #: did the last read-replica selection run under a partition (or
        #: with divergence already suspected for the volume)?
        self.last_read_divergence_suspected = False
        # invalidation rides the same update-notification datagrams the
        # physical layer's new-version cache listens to
        if network.has_host(host_addr):
            network.register_datagram_handler(host_addr, self._on_datagram)

    # -- locations ----------------------------------------------------------

    def locations_for(self, volume: VolumeId) -> list[ReplicaLocation]:
        cached = self._locations.get(volume)
        if cached:
            return cached
        from_table = self.graft_table.locations(volume)
        if from_table:
            self._locations[volume] = from_table
            return from_table
        raise AllReplicasUnavailable(f"no known replica locations for {volume}")

    def learn_locations(self, volume: VolumeId, locations: list[ReplicaLocation]) -> None:
        if locations:
            self._locations[volume] = sorted(
                locations, key=lambda loc: loc.volrep.replica_id
            )

    def _candidate_order(
        self, volume: VolumeId, ctx: OpContext = ROOT_CTX
    ) -> list[ReplicaLocation]:
        locations = self.locations_for(volume)
        local = [loc for loc in locations if loc.host == self.host_addr]
        remote = [loc for loc in locations if loc.host != self.host_addr]
        ordered = local + remote
        if ctx.replica_hint is not None:
            hinted = [loc for loc in ordered if loc.host == ctx.replica_hint]
            ordered = hinted + [loc for loc in ordered if loc.host != ctx.replica_hint]
        return ordered

    # -- replica iteration ----------------------------------------------------

    def _replica_batch(
        self, location: ReplicaLocation, fh: FicusFileHandle, ctx: OpContext
    ) -> tuple[ReplicaView, AttrBatch] | None:
        """One replica's directory vnode and attribute batch, via the cache.

        Returns ``None`` when the replica is unreachable or does not store
        the directory.  A warm cache entry costs no RPCs; a cold one costs
        the resolution (cached separately from the batch) plus one batched
        attribute fetch.  ``ctx.no_cache`` forces the fetch but still
        refreshes the cache with the result.
        """
        fh = fh.logical
        if not self.network.reachable(self.host_addr, location.host):
            # a cached vnode must never serve for a partitioned-away host
            return None
        entry = None if ctx.no_cache else self.attr_cache.lookup(location.volrep, fh)
        if entry is not None and entry.batch is not None:
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("logical.attr_cache_hits").inc()
            return ReplicaView(location, entry.dir_vnode), entry.batch
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("logical.attr_cache_misses").inc()
        dir_vnode = entry.dir_vnode if entry is not None else None
        try:
            if dir_vnode is None:
                dir_vnode = self.fabric.dir_by_handle(location.host, location.volrep, fh)
            batch = dir_vnode.getattrs_batch(None, ctx)
        except StaleFileHandle:
            # a cached handle died with a server reboot: resolve afresh once
            self.attr_cache.invalidate(location.volrep, fh)
            try:
                dir_vnode = self.fabric.dir_by_handle(location.host, location.volrep, fh)
                batch = dir_vnode.getattrs_batch(None, ctx)
            except (HostUnreachable, FileNotFound, StaleFileHandle):
                return None
        except (HostUnreachable, FileNotFound):
            return None
        self.attr_cache.store(location.volrep, fh, dir_vnode, batch)
        return ReplicaView(location, dir_vnode), batch

    def _skip_degraded(self, location: ReplicaLocation) -> bool:
        probe = self.degraded_probe
        return (
            probe is not None
            and location.host != self.host_addr
            and probe(location.host)
        )

    def replica_batches(
        self, volume: VolumeId, fh: FicusFileHandle, ctx: OpContext = ROOT_CTX
    ):
        """Yield ``(ReplicaView, AttrBatch)`` per reachable directory replica.

        Replicas that are unreachable, or that do not (yet) store the
        directory, are silently skipped — partial operation is normal.

        Replicas on *degraded* peers (the daemons' PeerHealth says they
        keep failing while reachable) are deferred: they are probed only
        if no healthy replica answers, so a read never burns a full NFS
        retransmission cycle against a flapping host that a healthy copy
        could serve instead.
        """
        deferred: list[ReplicaLocation] = []
        yielded = False
        for location in self._candidate_order(volume, ctx):
            if self._skip_degraded(location):
                deferred.append(location)
                continue
            state = self._replica_batch(location, fh, ctx)
            if state is not None:
                yielded = True
                yield state
        for location in deferred:
            if yielded:
                # a healthy replica answered: the degraded peer is spared
                self.degraded_skips += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter("selection.degraded_skips").inc()
                continue
            # availability first: when only degraded peers store the
            # volume, probe them anyway rather than failing the operation
            state = self._replica_batch(location, fh, ctx)
            if state is not None:
                yielded = True
                yield state

    def reachable_dirs(
        self, volume: VolumeId, fh: FicusFileHandle, ctx: OpContext = ROOT_CTX
    ):
        """Yield a :class:`ReplicaView` per reachable replica of a directory."""
        for view, _batch in self.replica_batches(volume, fh, ctx):
            yield view

    def first_dir(
        self, volume: VolumeId, fh: FicusFileHandle, ctx: OpContext = ROOT_CTX
    ) -> ReplicaView:
        """The first reachable replica of a directory (one-copy rule)."""
        for view in self.reachable_dirs(volume, fh, ctx):
            return view
        raise AllReplicasUnavailable(f"no reachable replica stores directory {fh}")

    def read_entries(
        self, volume: VolumeId, fh: FicusFileHandle, ctx: OpContext = ROOT_CTX
    ) -> list[DirectoryEntry]:
        """Directory entries, from the selected replica.

        Under the default ``latest`` policy this is the directory replica
        with a maximal version vector among those reachable — "select the
        most recent copy available" applies to directories too, so a host
        whose own replica has not yet reconciled still sees names created
        elsewhere.  Under ``any``, the first reachable replica serves.
        """
        best = self.select_dir_replica(volume, fh, ctx)
        try:
            return decode_directory(read_whole(best.dir_vnode, ctx=ctx))
        except StaleFileHandle:
            # a server rebooted under us; its caches are scrubbed now, so
            # re-resolve the replica we already selected rather than
            # re-probing every replica from scratch
            self.attr_cache.invalidate(best.location.volrep, fh.logical)
            fresh = self.fabric.dir_by_handle(
                best.location.host, best.location.volrep, fh
            )
            return decode_directory(read_whole(fresh, ctx=ctx))

    def select_dir_replica(
        self, volume: VolumeId, fh: FicusFileHandle, ctx: OpContext = ROOT_CTX
    ) -> ReplicaView:
        """Pick the directory replica the read policy dictates.

        Version vectors come from the cached attribute batches: selecting
        among N replicas costs at most N batched fetches cold, none warm —
        never a per-replica probe on top of resolution.
        """
        if self.read_policy == READ_ANY:
            return self.first_dir(volume, fh, ctx)
        candidates = list(self.replica_batches(volume, fh, ctx))
        if not candidates:
            raise AllReplicasUnavailable(f"no reachable replica stores directory {fh}")
        if len(candidates) == 1:
            # only one copy reachable: it is trivially the most recent available
            return candidates[0][0]
        maximal = [
            (view, batch.dir_aux.vv)
            for view, batch in candidates
            if not any(
                other.dir_aux.vv.strictly_dominates(batch.dir_aux.vv)
                for _, other in candidates
            )
        ]
        maximal.sort(key=lambda c: (-c[1].total_updates, c[0].location.volrep.replica_id))
        return maximal[0][0]

    # -- file replica selection -------------------------------------------------

    def file_replicas(
        self,
        volume: VolumeId,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        ctx: OpContext = ROOT_CTX,
    ) -> list[FileReplicaView]:
        """Every reachable replica that stores the file, with its version.

        Served from the per-replica attribute batches, so enumerating N
        replicas never costs more than N batched fetches (and costs
        nothing warm) — not one RPC per file per replica.

        A *negative* answer — no reachable replica stores the file — is
        never believed from the cache alone: reconciliation and update
        propagation add entries to replicas without sending notifications,
        so a warm batch can lack a file its replica has since acquired.
        Before declaring the file unavailable, the batches are refetched
        once (``no_cache``) and the verdict re-derived.
        """
        out = self._file_replicas_once(volume, parent_fh, fh, ctx)
        if not out and not ctx.no_cache:
            out = self._file_replicas_once(volume, parent_fh, fh, ctx.with_no_cache())
        return out

    def _file_replicas_once(
        self,
        volume: VolumeId,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        ctx: OpContext,
    ) -> list[FileReplicaView]:
        out = []
        for view, batch in self.replica_batches(volume, parent_fh, ctx):
            aux = batch.child(fh)
            if aux is None:
                continue
            out.append(
                FileReplicaView(location=view.location, dir_vnode=view.dir_vnode, vv=aux.vv)
            )
        return out

    def select_read_replica(
        self,
        volume: VolumeId,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        ctx: OpContext = ROOT_CTX,
    ) -> FileReplicaView:
        """Pick the replica to read: "select the most recent copy available".

        With the ``latest`` policy the replicas' version vectors are
        compared and a maximal (undominated) one wins; concurrent maxima
        tie-break deterministically on total updates then replica id.
        With ``any``, the first reachable stored copy wins.
        """
        health = self.health
        if health is not None:
            # the paper's one-copy availability serves the best *reachable*
            # copy; under a partition (or with divergence already suspected
            # for the volume) the result may be stale, and the caller can
            # see that through this flag
            self.last_read_divergence_suspected = self._partition_suspected(
                volume
            ) or health.divergence_suspected(volume)
        pinned = self._session_pins.get(fh.logical)
        if pinned is not None:
            replicas = [
                r
                for r in self.file_replicas(volume, parent_fh, fh, ctx)
                if r.location == pinned.location
            ]
            if replicas:
                return replicas[0]
        candidates = self.file_replicas(volume, parent_fh, fh, ctx)
        if not candidates:
            raise AllReplicasUnavailable(f"no reachable replica stores file {fh}")
        if self.read_policy == READ_ANY:
            return candidates[0]
        maximal = [
            c
            for c in candidates
            if not any(o.vv.strictly_dominates(c.vv) for o in candidates)
        ]
        maximal.sort(key=lambda c: (-c.vv.total_updates, c.location.volrep.replica_id))
        return maximal[0]

    def _partition_suspected(self, volume: VolumeId) -> bool:
        """Is some known replica host of ``volume`` currently unreachable?"""
        try:
            locations = self.locations_for(volume)
        except AllReplicasUnavailable:
            return False
        for location in locations:
            if location.host != self.host_addr and not self.network.reachable(
                self.host_addr, location.host
            ):
                return True
        return False

    def select_update_replica(
        self,
        volume: VolumeId,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle | None = None,
        ctx: OpContext = ROOT_CTX,
    ) -> ReplicaView:
        """Pick the replica an update is applied to.

        For updates to an existing file, the replica must store the file
        (and a pinned open session wins).  For directory updates, any
        reachable replica storing the directory will do; local preferred.
        """
        if fh is not None:
            pinned = self._session_pins.get(fh.logical)
            if pinned is not None and self.network.reachable(
                self.host_addr, pinned.location.host
            ):
                return pinned
            stored = self.file_replicas(volume, parent_fh, fh, ctx)
            if not stored:
                raise AllReplicasUnavailable(f"no reachable replica stores file {fh}")
            best = self.select_read_replica(volume, parent_fh, fh, ctx)
            return ReplicaView(location=best.location, dir_vnode=best.dir_vnode)
        return self.first_dir(volume, parent_fh, ctx)

    # -- update notification ------------------------------------------------------

    def notify_update(
        self,
        volume: VolumeId,
        acting: ReplicaLocation,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        objkind: str = "file",
        origin: str = "update",
    ) -> int:
        """Send the asynchronous multicast update notification.

        "When a logical layer requests a physical layer to update a file
        or directory, an asynchronous multicast datagram is sent to all
        available replicas informing them that a new version of a file may
        be obtained from the replica receiving the update" (Section 2.5).

        The same event drives attribute-cache coherence: every cached
        batch of the updated directory is dropped, here and on each host
        receiving the datagram.  Dropping ALL replicas' batches (not just
        the acting replica's) is deliberately conservative: reconciliation
        and propagation move entries between replicas without sending
        notifications, so a notification is also the cheapest moment to
        shed any view of the directory that may have gone stale out of
        band.  The acting replica's batch — when it is local, so
        re-reading costs no RPC — is refreshed write-through.

        The datagram goes to every host storing the volume, including the
        acting host when the update was driven onto it remotely over NFS
        (its cache must learn its own replica moved), and including this
        host itself in that case (the self-delivery feeds the physical
        layer's new-version cache so the caller's own replicas pull the
        new version).
        """
        from repro.physical import notification_payload

        self.attr_cache.invalidate_dir(volume, parent_fh)
        if objkind == "dir":
            self.attr_cache.invalidate_dir(volume, fh)
        if self.fabric.is_local(acting.host):
            try:
                vnode = self.fabric.dir_by_handle(acting.host, acting.volrep, parent_fh)
                self.attr_cache.store(
                    acting.volrep, parent_fh, vnode, vnode.getattrs_batch()
                )
                self.attr_cache.stats.refreshes += 1
            except (FileNotFound, StaleFileHandle):
                pass
        others = {loc.host for loc in self.locations_for(volume)}
        if self.fabric.is_local(acting.host):
            # this host applied the update itself: its physical layer needs
            # no pull-note and its cache was already adjusted above
            others.discard(self.host_addr)
        if not others:
            return 0
        # the notification carries the live trace context so the receiving
        # host's eventual daemon pull joins this update's trace tree
        ctx = self.telemetry.tracer.current_context()
        payload = notification_payload(
            acting.volrep,
            parent_fh,
            fh,
            acting.host,
            objkind,
            trace=ctx.to_wire() if ctx is not None else None,
            origin=origin,
        )
        delivered = self.network.multicast(self.host_addr, sorted(others), payload)
        self.notifications_sent += 1
        health = self.health
        if health is not None and origin == "update" and delivered < len(others):
            # a replica-storing host missed this update's notification;
            # if it is partitioned away it now holds (or may soon hold)
            # diverged state — suspect it until a recon round completes.
            # The guard keeps the common all-delivered case free.
            for target in others:
                if target != self.host_addr and not self.network.reachable(
                    self.host_addr, target
                ):
                    health.note_missed_notification(volume, target)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("logical.notifications_sent").inc()
            self.telemetry.events.emit(
                "notification.sent",
                host=self.host_addr,
                fh=fh.logical.to_hex(),
                objkind=objkind,
                targets=len(others),
                delivered=delivered,
            )
        return delivered

    def _on_datagram(self, src: str, payload: object) -> None:
        """Drop cached attribute batches named by an update notification.

        The datagram is best-effort; a lost one leaves a stale batch whose
        staleness the cache TTL bounds.
        """
        if not isinstance(payload, dict) or payload.get("kind") != "new-version":
            return
        try:
            volume = VolumeReplicaId.from_hex(payload["volrep"]).volume
            parent = FicusFileHandle.from_hex(payload["parent"])
            fh = FicusFileHandle.from_hex(payload["fh"])
        except (KeyError, TypeError, InvalidArgument):
            return
        dropped = self.attr_cache.invalidate_dir(volume, parent)
        if payload.get("objkind") == "dir":
            dropped += self.attr_cache.invalidate_dir(volume, fh)
        if self.health is not None:
            # the flight ring shows which notifications this host heard
            self.health.record_op("notification.recv", f"{src}:{fh.to_hex()}")
        if dropped and self.telemetry.enabled:
            self.telemetry.metrics.counter("logical.attr_cache_invalidated").inc(dropped)

    # -- open/close sessions ---------------------------------------------------------

    def open_file(
        self,
        volume: VolumeId,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        ctx: OpContext = ROOT_CTX,
    ) -> ReplicaView:
        """Open = pin a replica and start an update session on it."""
        view = self.select_update_replica(volume, parent_fh, fh, ctx)
        view.dir_vnode.session_open(fh, ctx)
        self._session_pins[fh.logical] = view
        return view

    def close_file(
        self,
        volume: VolumeId,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        view = self._session_pins.pop(fh.logical, None)
        if view is None:
            return
        try:
            updated = view.dir_vnode.session_close(fh, ctx)
        except (HostUnreachable, FileNotFound, StaleFileHandle):
            # the session dies with the partition or crash; recon cleans
            # up.  (The old lookup-smuggled close could not even see the
            # crash: a cached lookup reply swallowed the RPC entirely.)
            updated = False
        if updated:
            # read-only sessions notify nobody: no version changed, so
            # peers' cached attribute batches stay valid
            self.notify_update(volume, view.location, parent_fh, fh)

    # -- graft point administration ---------------------------------------------------

    def create_graft_point(
        self,
        parent: "LogicalDirVnode",
        name: str,
        target_volume: VolumeId,
        locations: list[ReplicaLocation],
    ) -> None:
        """Create a graft point naming ``target_volume`` under ``parent``.

        "The particular volume to be grafted onto a graft point is fixed
        when the graft point is created" (Section 4.3) — the volume id is
        stored in the entry; the replica locations become LOCATION entries
        inside the graft point, replicated and reconciled like any other
        directory contents.
        """
        from repro.physical.wire import EntryType, op_dir, op_insert
        from repro.volume import location_entry_name

        replica = self.select_update_replica(parent.volume, parent.fh)
        replica.dir_vnode.create(
            op_insert(None, name, None, EntryType.GRAFT_POINT, data=target_volume.to_hex())
        )
        entry = parent._find_entry_at(replica, name)
        graft_dir = replica.dir_vnode.lookup(op_dir(entry.fh))
        for location in locations:
            graft_dir.create(
                op_insert(
                    None,
                    location_entry_name(location.volrep.replica_id),
                    None,
                    EntryType.LOCATION,
                    data=location.host,
                )
            )
        self.notify_update(parent.volume, replica.location, parent.fh, entry.fh)
        self.learn_locations(target_volume, locations)

    def add_graft_location(
        self,
        parent: "LogicalDirVnode",
        graft_name: str,
        location: ReplicaLocation,
    ) -> None:
        """Record an additional volume replica in an existing graft point.

        "the number and placement of volume replicas may be dynamically
        changed" (Section 4.3).
        """
        from repro.physical.wire import EntryType, op_dir, op_insert
        from repro.volume import location_entry_name

        replica = self.select_update_replica(parent.volume, parent.fh)
        entry = parent._find_entry_at(replica, graft_name)
        graft_dir = replica.dir_vnode.lookup(op_dir(entry.fh))
        graft_dir.create(
            op_insert(
                None,
                location_entry_name(location.volrep.replica_id),
                None,
                EntryType.LOCATION,
                data=location.host,
            )
        )
        self.notify_update(parent.volume, replica.location, parent.fh, entry.fh)
        target = VolumeId.from_hex(entry.data)
        known = {loc.volrep: loc for loc in self._locations.get(target, [])}
        known[location.volrep] = location
        self.learn_locations(target, list(known.values()))

    # -- the root of the logical name space --------------------------------------------

    def root(self) -> "LogicalDirVnode":
        from repro.logical.vnodes import LogicalDirVnode

        return LogicalDirVnode(self, self.root_volume, volume_root_handle(self.root_volume))
