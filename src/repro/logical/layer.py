"""The Ficus logical layer.

"The Ficus logical layer presents its clients ... with the abstraction
that each file has only a single copy, although it may actually have many
physical replicas.  The logical layer performs concurrency control on
logical files, and implements a replica selection algorithm in accordance
with the consistency policy in effect.  The default policy of one-copy
availability is to select the most recent copy available.  The logical
layer also oversees update propagation notification..." (Section 2.5).

One instance runs per host.  It never touches storage itself: every
access goes through a physical layer, local or across NFS, via the
:class:`~repro.logical.fabric.Fabric`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    AllReplicasUnavailable,
    FileNotFound,
    HostUnreachable,
    InvalidArgument,
    StaleFileHandle,
)
from repro.logical.fabric import Fabric
from repro.logical.locks import LockManager
from repro.net import Network
from repro.physical import (
    AuxAttributes,
    DirectoryEntry,
    decode_directory,
    volume_root_handle,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.physical.wire import op_aux, op_close, op_open
from repro.util import FicusFileHandle, VolumeId
from repro.vnode.interface import FileSystemLayer, Vnode, read_whole
from repro.volume import GraftTable, Grafter, ReplicaLocation
from repro.vv import VersionVector

#: Replica-selection policies for reads.
READ_LATEST = "latest"  # the paper's default: most recent copy available
READ_ANY = "any"  # first reachable copy (cheaper, weaker)


@dataclass
class ReplicaView:
    """One reachable replica of a directory (or of a file through it)."""

    location: ReplicaLocation
    dir_vnode: Vnode


@dataclass
class FileReplicaView:
    """One reachable, stored replica of a regular file."""

    location: ReplicaLocation
    dir_vnode: Vnode
    vv: VersionVector


class FicusLogicalLayer(FileSystemLayer):
    """Per-host logical layer: the single-copy abstraction."""

    layer_name = "ficus-logical"

    def __init__(
        self,
        network: Network,
        host_addr: str,
        fabric: Fabric,
        graft_table: GraftTable,
        root_volume: VolumeId,
        read_policy: str = READ_LATEST,
        telemetry: Telemetry | None = None,
    ):
        super().__init__()
        if read_policy not in (READ_LATEST, READ_ANY):
            raise InvalidArgument(f"unknown read policy {read_policy!r}")
        self.network = network
        self.host_addr = host_addr
        self.fabric = fabric
        self.graft_table = graft_table
        self.root_volume = root_volume
        self.read_policy = read_policy
        self.telemetry = telemetry or NULL_TELEMETRY
        self.grafter = Grafter(network, host_addr, telemetry=self.telemetry)
        self.locks = LockManager()
        #: volume -> known replica locations (root volume seeded from the
        #: graft table; others learned by autografting).
        self._locations: dict[VolumeId, list[ReplicaLocation]] = {}
        #: open-session pins: logical fh -> the replica taking this session
        self._session_pins: dict[FicusFileHandle, ReplicaView] = {}
        self.notifications_sent = 0

    # -- locations ----------------------------------------------------------

    def locations_for(self, volume: VolumeId) -> list[ReplicaLocation]:
        cached = self._locations.get(volume)
        if cached:
            return cached
        from_table = self.graft_table.locations(volume)
        if from_table:
            self._locations[volume] = from_table
            return from_table
        raise AllReplicasUnavailable(f"no known replica locations for {volume}")

    def learn_locations(self, volume: VolumeId, locations: list[ReplicaLocation]) -> None:
        if locations:
            self._locations[volume] = sorted(
                locations, key=lambda loc: loc.volrep.replica_id
            )

    def _candidate_order(self, volume: VolumeId) -> list[ReplicaLocation]:
        locations = self.locations_for(volume)
        local = [loc for loc in locations if loc.host == self.host_addr]
        remote = [loc for loc in locations if loc.host != self.host_addr]
        return local + remote

    # -- replica iteration ----------------------------------------------------

    def reachable_dirs(self, volume: VolumeId, fh: FicusFileHandle):
        """Yield a :class:`ReplicaView` per reachable replica of a directory.

        Replicas that are unreachable, or that do not (yet) store the
        directory, are silently skipped — partial operation is normal.
        """
        for location in self._candidate_order(volume):
            try:
                dir_vnode = self.fabric.dir_by_handle(location.host, location.volrep, fh)
            except (HostUnreachable, FileNotFound, StaleFileHandle):
                continue
            yield ReplicaView(location=location, dir_vnode=dir_vnode)

    def first_dir(self, volume: VolumeId, fh: FicusFileHandle) -> ReplicaView:
        """The first reachable replica of a directory (one-copy rule)."""
        for view in self.reachable_dirs(volume, fh):
            return view
        raise AllReplicasUnavailable(f"no reachable replica stores directory {fh}")

    def read_entries(self, volume: VolumeId, fh: FicusFileHandle) -> list[DirectoryEntry]:
        """Directory entries, from the selected replica.

        Under the default ``latest`` policy this is the directory replica
        with a maximal version vector among those reachable — "select the
        most recent copy available" applies to directories too, so a host
        whose own replica has not yet reconciled still sees names created
        elsewhere.  Under ``any``, the first reachable replica serves.
        """
        try:
            best = self.select_dir_replica(volume, fh)
            return decode_directory(read_whole(best.dir_vnode))
        except StaleFileHandle:
            # a server rebooted under us; its caches are scrubbed now,
            # so a fresh selection resolves live handles
            best = self.select_dir_replica(volume, fh)
            return decode_directory(read_whole(best.dir_vnode))

    def select_dir_replica(self, volume: VolumeId, fh: FicusFileHandle) -> ReplicaView:
        """Pick the directory replica the read policy dictates."""
        if self.read_policy == READ_ANY:
            return self.first_dir(volume, fh)
        views = list(self.reachable_dirs(volume, fh))
        if len(views) == 1:
            # only one copy reachable: it is trivially the most recent
            # available, no version-vector probes needed
            return views[0]
        from repro.physical.wire import op_dir_aux

        candidates: list[tuple[ReplicaView, VersionVector]] = []
        for view in views:
            try:
                aux = AuxAttributes.from_bytes(read_whole(view.dir_vnode.lookup(op_dir_aux())))
            except (HostUnreachable, FileNotFound, StaleFileHandle):
                continue
            candidates.append((view, aux.vv))
        if not candidates:
            raise AllReplicasUnavailable(f"no reachable replica stores directory {fh}")
        maximal = [
            (view, vv)
            for view, vv in candidates
            if not any(other.strictly_dominates(vv) for _, other in candidates)
        ]
        maximal.sort(key=lambda c: (-c[1].total_updates, c[0].location.volrep.replica_id))
        return maximal[0][0]

    # -- file replica selection -------------------------------------------------

    def file_replicas(
        self, volume: VolumeId, parent_fh: FicusFileHandle, fh: FicusFileHandle
    ) -> list[FileReplicaView]:
        """Every reachable replica that stores the file, with its version."""
        out = []
        for view in self.reachable_dirs(volume, parent_fh):
            try:
                aux_bytes = read_whole(view.dir_vnode.lookup(op_aux(fh)))
            except (HostUnreachable, FileNotFound, StaleFileHandle):
                continue
            aux = AuxAttributes.from_bytes(aux_bytes)
            out.append(
                FileReplicaView(location=view.location, dir_vnode=view.dir_vnode, vv=aux.vv)
            )
        return out

    def select_read_replica(
        self, volume: VolumeId, parent_fh: FicusFileHandle, fh: FicusFileHandle
    ) -> FileReplicaView:
        """Pick the replica to read: "select the most recent copy available".

        With the ``latest`` policy the replicas' version vectors are
        compared and a maximal (undominated) one wins; concurrent maxima
        tie-break deterministically on total updates then replica id.
        With ``any``, the first reachable stored copy wins.
        """
        pinned = self._session_pins.get(fh.logical)
        if pinned is not None:
            replicas = [
                r
                for r in self.file_replicas(volume, parent_fh, fh)
                if r.location == pinned.location
            ]
            if replicas:
                return replicas[0]
        candidates = self.file_replicas(volume, parent_fh, fh)
        if not candidates:
            raise AllReplicasUnavailable(f"no reachable replica stores file {fh}")
        if self.read_policy == READ_ANY:
            return candidates[0]
        maximal = [
            c
            for c in candidates
            if not any(o.vv.strictly_dominates(c.vv) for o in candidates)
        ]
        maximal.sort(key=lambda c: (-c.vv.total_updates, c.location.volrep.replica_id))
        return maximal[0]

    def select_update_replica(
        self,
        volume: VolumeId,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle | None = None,
    ) -> ReplicaView:
        """Pick the replica an update is applied to.

        For updates to an existing file, the replica must store the file
        (and a pinned open session wins).  For directory updates, any
        reachable replica storing the directory will do; local preferred.
        """
        if fh is not None:
            pinned = self._session_pins.get(fh.logical)
            if pinned is not None and self.network.reachable(
                self.host_addr, pinned.location.host
            ):
                return pinned
            stored = self.file_replicas(volume, parent_fh, fh)
            if not stored:
                raise AllReplicasUnavailable(f"no reachable replica stores file {fh}")
            best = self.select_read_replica(volume, parent_fh, fh)
            return ReplicaView(location=best.location, dir_vnode=best.dir_vnode)
        return self.first_dir(volume, parent_fh)

    # -- update notification ------------------------------------------------------

    def notify_update(
        self,
        volume: VolumeId,
        acting: ReplicaLocation,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        objkind: str = "file",
    ) -> int:
        """Send the asynchronous multicast update notification.

        "When a logical layer requests a physical layer to update a file
        or directory, an asynchronous multicast datagram is sent to all
        available replicas informing them that a new version of a file may
        be obtained from the replica receiving the update" (Section 2.5).
        """
        from repro.physical import notification_payload

        others = {
            loc.host
            for loc in self.locations_for(volume)
            if loc.host != acting.host
        }
        if not others:
            return 0
        # the notification carries the live trace context so the receiving
        # host's eventual daemon pull joins this update's trace tree
        ctx = self.telemetry.tracer.current_context()
        payload = notification_payload(
            acting.volrep,
            parent_fh,
            fh,
            acting.host,
            objkind,
            trace=ctx.to_wire() if ctx is not None else None,
        )
        delivered = self.network.multicast(self.host_addr, sorted(others), payload)
        self.notifications_sent += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("logical.notifications_sent").inc()
            self.telemetry.events.emit(
                "notification.sent",
                host=self.host_addr,
                fh=fh.logical.to_hex(),
                objkind=objkind,
                targets=len(others),
                delivered=delivered,
            )
        return delivered

    # -- open/close sessions ---------------------------------------------------------

    def open_file(
        self, volume: VolumeId, parent_fh: FicusFileHandle, fh: FicusFileHandle
    ) -> ReplicaView:
        """Open = pin a replica and smuggle the open through lookup."""
        view = self.select_update_replica(volume, parent_fh, fh)
        view.dir_vnode.lookup(op_open(fh))
        self._session_pins[fh.logical] = view
        return view

    def close_file(
        self, volume: VolumeId, parent_fh: FicusFileHandle, fh: FicusFileHandle
    ) -> None:
        view = self._session_pins.pop(fh.logical, None)
        if view is None:
            return
        try:
            view.dir_vnode.lookup(op_close(fh))
        except (HostUnreachable, FileNotFound):
            pass  # the session dies with the partition; recon cleans up
        self.notify_update(volume, view.location, parent_fh, fh)

    # -- graft point administration ---------------------------------------------------

    def create_graft_point(
        self,
        parent: "LogicalDirVnode",
        name: str,
        target_volume: VolumeId,
        locations: list[ReplicaLocation],
    ) -> None:
        """Create a graft point naming ``target_volume`` under ``parent``.

        "The particular volume to be grafted onto a graft point is fixed
        when the graft point is created" (Section 4.3) — the volume id is
        stored in the entry; the replica locations become LOCATION entries
        inside the graft point, replicated and reconciled like any other
        directory contents.
        """
        from repro.physical.wire import EntryType, op_dir, op_insert
        from repro.volume import location_entry_name

        replica = self.select_update_replica(parent.volume, parent.fh)
        replica.dir_vnode.create(
            op_insert(None, name, None, EntryType.GRAFT_POINT, data=target_volume.to_hex())
        )
        entry = parent._find_entry_at(replica, name)
        graft_dir = replica.dir_vnode.lookup(op_dir(entry.fh))
        for location in locations:
            graft_dir.create(
                op_insert(
                    None,
                    location_entry_name(location.volrep.replica_id),
                    None,
                    EntryType.LOCATION,
                    data=location.host,
                )
            )
        self.notify_update(parent.volume, replica.location, parent.fh, entry.fh)
        self.learn_locations(target_volume, locations)

    def add_graft_location(
        self,
        parent: "LogicalDirVnode",
        graft_name: str,
        location: ReplicaLocation,
    ) -> None:
        """Record an additional volume replica in an existing graft point.

        "the number and placement of volume replicas may be dynamically
        changed" (Section 4.3).
        """
        from repro.physical.wire import EntryType, op_dir, op_insert
        from repro.volume import location_entry_name

        replica = self.select_update_replica(parent.volume, parent.fh)
        entry = parent._find_entry_at(replica, graft_name)
        graft_dir = replica.dir_vnode.lookup(op_dir(entry.fh))
        graft_dir.create(
            op_insert(
                None,
                location_entry_name(location.volrep.replica_id),
                None,
                EntryType.LOCATION,
                data=location.host,
            )
        )
        self.notify_update(parent.volume, replica.location, parent.fh, entry.fh)
        target = VolumeId.from_hex(entry.data)
        known = {loc.volrep: loc for loc in self._locations.get(target, [])}
        known[location.volrep] = location
        self.learn_locations(target, list(known.values()))

    # -- the root of the logical name space --------------------------------------------

    def root(self) -> "LogicalDirVnode":
        from repro.logical.vnodes import LogicalDirVnode

        return LogicalDirVnode(self, self.root_volume, volume_root_handle(self.root_volume))
