"""The Ficus logical layer: single-copy abstraction over replicas."""

from repro.logical.attr_cache import CacheStats, VersionVectorCache
from repro.logical.fabric import PHYSICAL_SERVICE, Fabric
from repro.logical.layer import (
    READ_ANY,
    READ_LATEST,
    FicusLogicalLayer,
    FileReplicaView,
    ReplicaView,
)
from repro.logical.locks import LockManager
from repro.logical.vnodes import LogicalDirVnode, LogicalFileVnode

__all__ = [
    "CacheStats",
    "Fabric",
    "FicusLogicalLayer",
    "FileReplicaView",
    "LockManager",
    "LogicalDirVnode",
    "LogicalFileVnode",
    "PHYSICAL_SERVICE",
    "READ_ANY",
    "READ_LATEST",
    "ReplicaView",
    "VersionVectorCache",
]
