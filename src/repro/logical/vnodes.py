"""Vnodes exported by the Ficus logical layer (the client-facing view).

These vnodes name *logical* files: no replica is pinned in the vnode
itself.  Every operation selects a replica at call time, which is what
makes the layer tolerant of replicas vanishing mid-use — a read that loses
its replica to a partition simply fails over to another copy.
"""

from __future__ import annotations

from repro.errors import (
    AllReplicasUnavailable,
    CrossDevice,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.physical import EntryType, decode_directory, effective_entries
from repro.physical.wire import op_byfh, op_insert, op_remove
from repro.ufs.inode import FileAttributes, FileType
from repro.util import FicusFileHandle, VolumeId
from repro.vnode.interface import (
    ROOT_CTX,
    DirEntry,
    OpContext,
    SetAttrs,
    Vnode,
    read_whole,
)
from repro.volume import locations_from_entries

_TYPE_MAP = {
    EntryType.FILE: FileType.REGULAR,
    EntryType.SYMLINK: FileType.SYMLINK,
    EntryType.DIRECTORY: FileType.DIRECTORY,
    EntryType.GRAFT_POINT: FileType.DIRECTORY,
}


def _check_user_name(name: str) -> None:
    """Reject names that collide with the physical control namespace.

    The physical layer encodes replica-addressed control operations as
    ``@@``-prefixed pseudo-names (paper Section 2.3).  A user file named
    ``@@dir|...`` would be indistinguishable from such a control request,
    so the prefix is reserved at the boundary where user names enter.
    """
    if name.startswith("@@"):
        raise InvalidArgument(
            f"{name!r}: names beginning with '@@' are reserved for "
            "physical-layer control operations"
        )


def _record(layer, op: str, target: str, ctx: OpContext) -> None:
    """Flight-recorder hook: one ring append when the health plane is on."""
    health = layer.health
    if health is not None:
        health.record_op(op, target, ctx)


class LogicalDirVnode(Vnode):
    """A logical directory: one name, many replicas underneath."""

    def __init__(self, layer: "FicusLogicalLayer", volume: VolumeId, fh: FicusFileHandle):  # noqa: F821
        self.layer = layer
        self.volume = volume
        self.fh = fh.logical
        # the tracer is created once per Telemetry hub and never replaced,
        # so binding it here saves two attribute hops on every operation
        self._tracer = layer.telemetry.tracer

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LogicalDirVnode)
            and other.layer is self.layer
            and other.volume == self.volume
            and other.fh == self.fh
        )

    def __hash__(self) -> int:
        return hash((id(self.layer), self.volume, self.fh))

    # -- helpers ----------------------------------------------------------

    def _view(self, ctx: OpContext = ROOT_CTX) -> dict[str, object]:
        entries = self.layer.read_entries(self.volume, self.fh, ctx)
        return effective_entries(entries)

    def _autograft(self, entry, ctx: OpContext = ROOT_CTX) -> "LogicalDirVnode":
        """Cross into the volume a graft point names (paper Section 4.4)."""
        from repro.physical import volume_root_handle

        target_volume = VolumeId.from_hex(entry.data)
        graft_entries = self.layer.read_entries(self.volume, entry.fh, ctx)
        locations = locations_from_entries(target_volume, graft_entries)
        state = self.layer.grafter.graft(target_volume, locations)
        self.layer.learn_locations(target_volume, state.locations)
        return LogicalDirVnode(self.layer, target_volume, volume_root_handle(target_volume))

    def _child(self, entry, ctx: OpContext = ROOT_CTX) -> Vnode:
        if entry.etype == EntryType.GRAFT_POINT:
            return self._autograft(entry, ctx)
        if entry.etype == EntryType.DIRECTORY:
            return LogicalDirVnode(self.layer, self.volume, entry.fh)
        return LogicalFileVnode(self.layer, self.volume, self.fh, entry.fh, entry.etype)

    # -- lifetime --

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("open")

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("close")

    def inactive(self) -> None:
        self.layer.counters.bump("inactive")

    # -- attributes --

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        self.layer.counters.bump("getattr")
        view = self.layer.first_dir(self.volume, self.fh, ctx)
        return view.dir_vnode.getattr(ctx)

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("setattr")
        view = self.layer.select_update_replica(self.volume, self.fh, ctx=ctx)
        view.dir_vnode.setattr(attrs, ctx)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.counters.bump("access")
        view = self.layer.first_dir(self.volume, self.fh, ctx)
        return view.dir_vnode.access(mode, ctx)

    # -- namespace --

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("lookup")
        _record(self.layer, "dir.lookup", name, ctx)
        # enabled-check before building span arguments: this is a hot path
        # and the disabled fast path must cost only a branch
        tracer = self._tracer
        if not tracer.enabled:
            return self._lookup_impl(name, ctx)
        with tracer.span("logical.lookup", layer="logical", host=self.layer.host_addr):
            return self._lookup_impl(name, ctx)

    def _lookup_impl(self, name: str, ctx: OpContext) -> Vnode:
        view = self._view(ctx)
        entry = view.get(name)
        if entry is None or entry.etype == EntryType.LOCATION:
            raise FileNotFound(f"{name!r} not found")
        return self._child(entry, ctx)

    def create(
        self,
        name: str,
        perm: int = 0o644,
        ctx: OpContext = ROOT_CTX,
        merge_policy: str = "",
    ) -> Vnode:
        self.layer.counters.bump("create")
        _record(self.layer, "dir.create", name, ctx)
        return self._insert_new(name, EntryType.FILE, ctx=ctx, merge_policy=merge_policy)

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("mkdir")
        _record(self.layer, "dir.mkdir", name, ctx)
        return self._insert_new(name, EntryType.DIRECTORY, ctx=ctx)

    def symlink(self, name: str, target: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("symlink")
        _record(self.layer, "dir.symlink", name, ctx)
        vnode = self._insert_new(name, EntryType.SYMLINK, ctx=ctx)
        vnode.write(0, target.encode("utf-8"), ctx)
        return vnode

    def _insert_new(
        self,
        name: str,
        etype: EntryType,
        data: str = "",
        ctx: OpContext = ROOT_CTX,
        merge_policy: str = "",
    ) -> Vnode:
        """Create a brand-new object: the chosen replica mints its ids."""
        tracer = self._tracer
        if not tracer.enabled:
            return self._insert_new_impl(name, etype, data, ctx, merge_policy)
        with tracer.span(
            "logical.insert", layer="logical", host=self.layer.host_addr, etype=etype.value
        ):
            return self._insert_new_impl(name, etype, data, ctx, merge_policy)

    def _insert_new_impl(
        self, name: str, etype: EntryType, data: str, ctx: OpContext, merge_policy: str = ""
    ) -> Vnode:
        _check_user_name(name)
        replica = self.layer.select_update_replica(self.volume, self.fh, ctx=ctx)
        existing = effective_entries(decode_directory(read_whole(replica.dir_vnode, ctx=ctx)))
        if name in existing:
            raise FileExists(f"{name!r} already exists")
        replica.dir_vnode.create(
            op_insert(None, name, None, etype, data=data, merge_policy=merge_policy), ctx=ctx
        )
        entry = self._find_entry_at(replica, name, ctx)
        self.layer.notify_update(self.volume, replica.location, self.fh, entry.fh, objkind="dir")
        return self._child(entry, ctx)

    def _find_entry_at(self, replica, name: str, ctx: OpContext = ROOT_CTX):
        entries = decode_directory(read_whole(replica.dir_vnode, ctx=ctx))
        view = effective_entries(entries)
        entry = view.get(name)
        if entry is None:
            raise FileNotFound(f"{name!r} vanished after insert")
        return entry

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("remove")
        _record(self.layer, "dir.remove", name, ctx)
        tracer = self._tracer
        if not tracer.enabled:
            self._remove_impl(name, ctx)
            return
        with tracer.span("logical.remove", layer="logical", host=self.layer.host_addr):
            self._remove_impl(name, ctx)

    def _remove_impl(self, name: str, ctx: OpContext) -> None:
        replica = self.layer.select_update_replica(self.volume, self.fh, ctx=ctx)
        entry = self._find_entry_at(replica, name, ctx)
        if entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT):
            raise IsADirectory(f"{name!r} is a directory; use rmdir")
        replica.dir_vnode.remove(op_remove(entry.eid), ctx)
        self.layer.notify_update(self.volume, replica.location, self.fh, entry.fh, objkind="dir")

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("rmdir")
        _record(self.layer, "dir.rmdir", name, ctx)
        replica = self.layer.select_update_replica(self.volume, self.fh, ctx=ctx)
        entry = self._find_entry_at(replica, name, ctx)
        if entry.etype == EntryType.FILE or entry.etype == EntryType.SYMLINK:
            raise NotADirectory(f"{name!r} is not a directory")
        if entry.etype == EntryType.DIRECTORY:
            sub_entries = self.layer.read_entries(self.volume, entry.fh, ctx)
            live = [
                e for e in sub_entries if e.live and e.etype != EntryType.LOCATION
            ]
            if live:
                raise DirectoryNotEmpty(f"{name!r} is not empty")
        replica.dir_vnode.remove(op_remove(entry.eid), ctx)
        self.layer.notify_update(self.volume, replica.location, self.fh, entry.fh, objkind="dir")

    def link(self, target: Vnode, name: str, ctx: OpContext = ROOT_CTX) -> None:
        """Give an existing file an additional name (paper: Ficus files are
        organized in a general DAG; files may have several names)."""
        self.layer.counters.bump("link")
        _record(self.layer, "dir.link", name, ctx)
        _check_user_name(name)
        if not isinstance(target, LogicalFileVnode):
            raise InvalidArgument("link target must be a logical file")
        if target.volume != self.volume:
            raise CrossDevice("links may not cross volume boundaries")
        replica = self._replica_storing(target, ctx)
        existing = effective_entries(decode_directory(read_whole(replica.dir_vnode, ctx=ctx)))
        if name in existing:
            raise FileExists(f"{name!r} already exists")
        replica.dir_vnode.create(
            op_insert(None, name, target.fh, target.etype, link_from=target.parent_fh), ctx=ctx
        )
        self.layer.notify_update(self.volume, replica.location, self.fh, target.fh, objkind="dir")

    def _replica_storing(self, target: "LogicalFileVnode", ctx: OpContext = ROOT_CTX):
        """An update replica of this directory that also stores ``target``.

        The hard link must land where the file's storage lives.
        """
        stored_at = {
            r.location
            for r in self.layer.file_replicas(self.volume, target.parent_fh, target.fh, ctx)
        }
        for view in self.layer.reachable_dirs(self.volume, self.fh, ctx):
            if view.location in stored_at:
                return view
        raise AllReplicasUnavailable(
            "no reachable replica stores both the directory and the link target"
        )

    def rename(
        self,
        src_name: str,
        dst_dir: Vnode,
        dst_name: str,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        """Rename = insert the new name, then remove the old one.

        Composed from the two replayable directory operations so that the
        reconciliation machinery handles a rename that happened during a
        partition exactly like any other insert/delete pair — including
        the concurrent-rename case that leaves a directory with two names.
        """
        self.layer.counters.bump("rename")
        _record(self.layer, "dir.rename", f"{src_name}->{dst_name}", ctx)
        _check_user_name(dst_name)
        if not isinstance(dst_dir, LogicalDirVnode):
            raise InvalidArgument("rename destination must be a logical directory")
        if dst_dir.volume != self.volume:
            raise CrossDevice("rename may not cross volume boundaries")
        src_replica = self.layer.select_update_replica(self.volume, self.fh, ctx=ctx)
        entry = self._find_entry_at(src_replica, src_name, ctx)
        # Unix semantics: a file target is replaced, a directory target errors.
        try:
            dst_existing = dst_dir._find_entry_at(
                self.layer.select_update_replica(self.volume, dst_dir.fh, ctx=ctx),
                dst_name,
                ctx,
            )
        except FileNotFound:
            dst_existing = None
        if dst_existing is not None:
            if dst_existing.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT):
                raise IsADirectory(f"rename target {dst_name!r} is a directory")
            dst_dir.remove(dst_name, ctx)
        link_from = self.fh if entry.etype in (EntryType.FILE, EntryType.SYMLINK) else None
        dst_replica = self.layer.select_update_replica(self.volume, dst_dir.fh, ctx=ctx)
        dst_replica.dir_vnode.create(
            op_insert(None, dst_name, entry.fh, entry.etype, data=entry.data, link_from=link_from),
            ctx=ctx,
        )
        self.layer.notify_update(self.volume, dst_replica.location, dst_dir.fh, entry.fh, objkind="dir")
        src_replica.dir_vnode.remove(op_remove(entry.eid), ctx)
        self.layer.notify_update(self.volume, src_replica.location, self.fh, entry.fh, objkind="dir")

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        self.layer.counters.bump("readdir")
        out = []
        for name, entry in sorted(self._view(ctx).items()):
            if entry.etype == EntryType.LOCATION:
                continue
            out.append(
                DirEntry(name=name, fileid=entry.fh.file_id.unique, ftype=_TYPE_MAP[entry.etype])
            )
        return out

    def __repr__(self) -> str:
        return f"LogicalDirVnode({self.volume}, {self.fh})"


class LogicalFileVnode(Vnode):
    """A logical regular file or symlink."""

    def __init__(
        self,
        layer: "FicusLogicalLayer",  # noqa: F821
        volume: VolumeId,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        etype: EntryType,
    ):
        self.layer = layer
        self.volume = volume
        self.parent_fh = parent_fh.logical
        self.fh = fh.logical
        self.etype = etype
        self._tracer = layer.telemetry.tracer

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LogicalFileVnode)
            and other.layer is self.layer
            and other.volume == self.volume
            and other.fh == self.fh
        )

    def __hash__(self) -> int:
        return hash((id(self.layer), self.volume, self.fh))

    # -- replica plumbing --

    def _read_child(self, ctx: OpContext = ROOT_CTX) -> Vnode:
        view = self.layer.select_read_replica(self.volume, self.parent_fh, self.fh, ctx)
        return view.dir_vnode.lookup(op_byfh(self.fh), ctx)

    def _update_view(self, ctx: OpContext = ROOT_CTX):
        return self.layer.select_update_replica(self.volume, self.parent_fh, self.fh, ctx)

    @staticmethod
    def _retry_stale(operation):
        """Run a replica operation, retrying once on a stale NFS handle.

        A shadow commit replaces the file's underlying inode, so a cached
        handle can go stale mid-use; the NFS client scrubs its caches
        before the error surfaces, so one fresh selection + lookup
        recovers (real NFS clients do exactly this dance on ESTALE).
        """
        from repro.errors import StaleFileHandle

        try:
            return operation()
        except StaleFileHandle:
            return operation()

    # -- lifetime: open/close delimit one update session --

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("open")
        _record(self.layer, "file.open", self.fh.to_hex(), ctx)
        tracer = self._tracer
        if not tracer.enabled:
            self.layer.open_file(self.volume, self.parent_fh, self.fh, ctx)
            return
        with tracer.span("logical.open", layer="logical", host=self.layer.host_addr):
            self.layer.open_file(self.volume, self.parent_fh, self.fh, ctx)

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("close")
        _record(self.layer, "file.close", self.fh.to_hex(), ctx)
        tracer = self._tracer
        if not tracer.enabled:
            self.layer.close_file(self.volume, self.parent_fh, self.fh, ctx)
            return
        with tracer.span("logical.close", layer="logical", host=self.layer.host_addr):
            self.layer.close_file(self.volume, self.parent_fh, self.fh, ctx)

    def inactive(self) -> None:
        self.layer.counters.bump("inactive")

    # -- data --

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        self.layer.counters.bump("read")
        _record(self.layer, "file.read", self.fh.to_hex(), ctx)
        tracer = self._tracer
        if not tracer.enabled:
            return self._retry_stale(lambda: self._read_child(ctx).read(offset, length, ctx))
        with tracer.span("logical.read", layer="logical", host=self.layer.host_addr):
            return self._retry_stale(lambda: self._read_child(ctx).read(offset, length, ctx))

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        self.layer.counters.bump("write")
        _record(self.layer, "file.write", self.fh.to_hex(), ctx)

        def attempt() -> int:
            view = self._update_view(ctx)
            written = view.dir_vnode.lookup(op_byfh(self.fh), ctx).write(offset, data, ctx)
            self.layer.notify_update(self.volume, view.location, self.parent_fh, self.fh)
            return written

        tracer = self._tracer
        if not tracer.enabled:
            return self._retry_stale(attempt)
        with tracer.span(
            "logical.write", layer="logical", host=self.layer.host_addr, bytes=len(data)
        ):
            return self._retry_stale(attempt)

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("truncate")
        _record(self.layer, "file.truncate", self.fh.to_hex(), ctx)

        def impl() -> None:
            view = self._update_view(ctx)
            view.dir_vnode.lookup(op_byfh(self.fh), ctx).truncate(size, ctx)
            self.layer.notify_update(self.volume, view.location, self.parent_fh, self.fh)

        tracer = self._tracer
        if not tracer.enabled:
            impl()
            return
        with tracer.span("logical.truncate", layer="logical", host=self.layer.host_addr):
            impl()

    def fsync(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("fsync")
        self._update_view(ctx).dir_vnode.lookup(op_byfh(self.fh), ctx).fsync(ctx)

    # -- attributes --

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        self.layer.counters.bump("getattr")
        return self._retry_stale(lambda: self._read_child(ctx).getattr(ctx))

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("setattr")
        view = self._update_view(ctx)
        view.dir_vnode.lookup(op_byfh(self.fh), ctx).setattr(attrs, ctx)
        self.layer.notify_update(self.volume, view.location, self.parent_fh, self.fh)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.counters.bump("access")
        return self._read_child(ctx).access(mode, ctx)

    # -- symlink --

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        self.layer.counters.bump("readlink")
        return self._retry_stale(lambda: self._read_child(ctx).readlink(ctx))

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        raise NotADirectory(f"{self.fh} is not a directory")

    def __repr__(self) -> str:
        return f"LogicalFileVnode({self.volume}, {self.fh})"
