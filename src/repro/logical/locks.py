"""Advisory concurrency control on logical files.

"The logical layer performs concurrency control on logical files" (paper
Section 2.5).  This is *local* concurrency control — it serializes the
clients of one logical layer; it deliberately does NOT serialize across
hosts, because one-copy availability forbids any global mutual exclusion
(that refusal is the whole point of the optimistic design).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PermissionDenied
from repro.util import FicusFileHandle


@dataclass
class _LockState:
    exclusive_owner: str | None = None
    shared_owners: dict[str, int] = field(default_factory=dict)
    exclusive_depth: int = 0


class LockManager:
    """Shared/exclusive advisory locks keyed by logical file handle."""

    def __init__(self) -> None:
        self._locks: dict[FicusFileHandle, _LockState] = {}

    def acquire_shared(self, fh: FicusFileHandle, owner: str) -> None:
        state = self._locks.setdefault(fh.logical, _LockState())
        if state.exclusive_owner is not None and state.exclusive_owner != owner:
            raise PermissionDenied(
                f"{fh} is exclusively locked by {state.exclusive_owner}"
            )
        state.shared_owners[owner] = state.shared_owners.get(owner, 0) + 1

    def acquire_exclusive(self, fh: FicusFileHandle, owner: str) -> None:
        state = self._locks.setdefault(fh.logical, _LockState())
        others_shared = [o for o in state.shared_owners if o != owner]
        if others_shared:
            raise PermissionDenied(f"{fh} is share-locked by {others_shared}")
        if state.exclusive_owner is not None and state.exclusive_owner != owner:
            raise PermissionDenied(
                f"{fh} is exclusively locked by {state.exclusive_owner}"
            )
        state.exclusive_owner = owner
        state.exclusive_depth += 1

    def release_shared(self, fh: FicusFileHandle, owner: str) -> None:
        state = self._locks.get(fh.logical)
        if state is None or owner not in state.shared_owners:
            return
        state.shared_owners[owner] -= 1
        if state.shared_owners[owner] <= 0:
            del state.shared_owners[owner]
        self._maybe_drop(fh.logical, state)

    def release_exclusive(self, fh: FicusFileHandle, owner: str) -> None:
        state = self._locks.get(fh.logical)
        if state is None or state.exclusive_owner != owner:
            return
        state.exclusive_depth -= 1
        if state.exclusive_depth <= 0:
            state.exclusive_owner = None
            state.exclusive_depth = 0
        self._maybe_drop(fh.logical, state)

    def _maybe_drop(self, fh: FicusFileHandle, state: _LockState) -> None:
        if state.exclusive_owner is None and not state.shared_owners:
            self._locks.pop(fh, None)

    def is_locked(self, fh: FicusFileHandle) -> bool:
        return fh.logical in self._locks
