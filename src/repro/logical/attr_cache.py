"""Per-host cache of replica attribute batches (the version-vector cache).

Replica selection is the logical layer's hot path: every open, read, and
directory listing must compare the version vectors of all reachable
replicas ("select the most recent copy available", paper Section 2.5).
Probing each replica for each decision costs O(replicas) RPCs per
operation.  This cache remembers, per directory replica, the last
:class:`~repro.physical.wire.AttrBatch` fetched from it — the directory's
own auxiliary attributes plus those of every stored child — together with
the resolved directory vnode, so a warm selection needs no RPCs at all.

Coherence is notification-driven, matching the paper's update model:

* the update-notification multicast datagram ("a new version of a file
  may be obtained...", Section 2.5) invalidates the affected directory's
  cached batches on every host that receives it;
* the updating host itself invalidates (and, for its local replica,
  refreshes) in :meth:`~repro.logical.layer.FicusLogicalLayer.notify_update`;
* because datagrams are best-effort and partitions eat them, every batch
  also carries a TTL — a lost invalidation delays freshness by at most
  ``ttl`` seconds of virtual time rather than forever.

The cached *vnode* deliberately survives invalidation: resolution
(volume root + handle lookup) is independent of attribute freshness, and
a stale NFS handle announces itself with ESTALE on use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.wire import AttrBatch
from repro.util import FicusFileHandle, VirtualClock, VolumeId, VolumeReplicaId
from repro.vnode.interface import Vnode

#: Default time-to-live for a cached batch, in seconds of virtual time.
#: Bounds the staleness window when an invalidation datagram is lost.
DEFAULT_TTL = 5.0


@dataclass
class CacheEntry:
    """Cached state for one directory replica."""

    dir_vnode: Vnode
    batch: AttrBatch | None = None
    fetched_at: float = 0.0


@dataclass
class CacheStats:
    """Hit/miss accounting (mirrors into telemetry at the layer)."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    invalidations: int = 0
    refreshes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "refreshes": self.refreshes,
        }


class VersionVectorCache:
    """Maps (volume replica, directory handle) to its last attribute batch.

    Keys always use the *logical* (replica-independent) directory handle;
    the replica identity lives in the :class:`VolumeReplicaId` half of the
    key, so one directory cached through three replicas occupies three
    independent entries that age and invalidate separately.
    """

    def __init__(self, clock: VirtualClock, ttl: float = DEFAULT_TTL):
        self.clock = clock
        self.ttl = ttl
        self.stats = CacheStats()
        self._entries: dict[tuple[VolumeReplicaId, FicusFileHandle], CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(
        volrep: VolumeReplicaId, dir_fh: FicusFileHandle
    ) -> tuple[VolumeReplicaId, FicusFileHandle]:
        return (volrep, dir_fh.logical)

    # -- reads --------------------------------------------------------------

    def lookup(self, volrep: VolumeReplicaId, dir_fh: FicusFileHandle) -> CacheEntry | None:
        """The fresh cache entry for one directory replica, if any.

        An entry whose batch has expired is returned with ``batch=None``
        (the resolved vnode is still good); a wholly absent entry is a
        miss.  Stats are bumped accordingly.
        """
        entry = self._entries.get(self._key(volrep, dir_fh))
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.batch is not None and self.clock.now() - entry.fetched_at > self.ttl:
            entry.batch = None
            self.stats.expirations += 1
        if entry.batch is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    # -- writes -------------------------------------------------------------

    def store(
        self,
        volrep: VolumeReplicaId,
        dir_fh: FicusFileHandle,
        dir_vnode: Vnode,
        batch: AttrBatch | None,
    ) -> None:
        """Record a freshly fetched batch (and the vnode it came through)."""
        self._entries[self._key(volrep, dir_fh)] = CacheEntry(
            dir_vnode=dir_vnode,
            batch=batch,
            fetched_at=self.clock.now(),
        )

    # -- invalidation ----------------------------------------------------------

    def invalidate(self, volrep: VolumeReplicaId, dir_fh: FicusFileHandle) -> None:
        """Forget everything cached for one directory replica."""
        if self._entries.pop(self._key(volrep, dir_fh), None) is not None:
            self.stats.invalidations += 1

    def invalidate_dir(self, volume: VolumeId, dir_fh: FicusFileHandle) -> int:
        """Drop the cached batch of *every* replica of one directory.

        Used on update notification: the datagram names the acting
        replica, but any cached view of the directory may now be
        dominated, so all of them must re-fetch.  The resolved vnodes are
        kept — handles stay valid across attribute changes.
        """
        dir_fh = dir_fh.logical
        dropped = 0
        for (volrep, fh), entry in self._entries.items():
            if volrep.volume == volume and fh == dir_fh and entry.batch is not None:
                entry.batch = None
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Forget everything (host restart, volume ungraft)."""
        self._entries.clear()
