"""Replica access fabric: reach any physical layer, local or remote.

The logical layer must not care where a physical layer runs: "the Ficus
replication service layers are able to use NFS for transparent access to
remote layers" and "the NFS layer is omitted when both layers are
co-resident" (paper Figure 1 and Section 2.2).  The fabric implements
exactly that choice: a local physical layer is called directly; a remote
one is reached through a cached NFS client mount.
"""

from __future__ import annotations

from repro.errors import HostUnreachable
from repro.net import Network
from repro.nfs import NfsClientConfig, NfsClientLayer
from repro.physical import FicusPhysicalLayer
from repro.physical.wire import op_dir
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.util import FicusFileHandle, VolumeReplicaId
from repro.vnode.interface import Vnode

#: RPC service name under which every host exports its physical layer.
PHYSICAL_SERVICE = "ficus-physical"


class Fabric:
    """Resolves (host, volume replica) to a physical-layer vnode."""

    def __init__(
        self,
        network: Network,
        host_addr: str,
        local_physical: FicusPhysicalLayer | None = None,
        nfs_config: NfsClientConfig | None = None,
        telemetry: Telemetry | None = None,
        health=None,
    ):
        self.network = network
        self.host_addr = host_addr
        self.local_physical = local_physical
        self.nfs_config = nfs_config
        self.telemetry = telemetry or NULL_TELEMETRY
        #: this host's HealthPlane, handed to every NFS client mount
        self.health = health
        self._mounts: dict[str, NfsClientLayer] = {}

    def is_local(self, host: str) -> bool:
        return host == self.host_addr and self.local_physical is not None

    def nfs_mount(self, host: str) -> NfsClientLayer:
        """The cached NFS client mount of ``host``'s physical layer."""
        mount = self._mounts.get(host)
        if mount is None:
            mount = NfsClientLayer(
                self.network,
                self.host_addr,
                host,
                service=PHYSICAL_SERVICE,
                config=self.nfs_config,
                telemetry=self.telemetry,
                health=self.health,
            )
            self._mounts[host] = mount
        return mount

    def physical_root(self, host: str) -> Vnode:
        """The physical layer's root vnode at ``host`` (NFS if remote)."""
        if self.is_local(host):
            return self.local_physical.root()
        if not self.network.reachable(self.host_addr, host):
            raise HostUnreachable(f"{self.host_addr} -> {host}")
        return self.nfs_mount(host).root()

    def volume_root(self, host: str, volrep: VolumeReplicaId) -> Vnode:
        """The root directory vnode of one volume replica."""
        return self.physical_root(host).lookup(volrep.to_hex())

    def dir_by_handle(self, host: str, volrep: VolumeReplicaId, fh: FicusFileHandle) -> Vnode:
        """Any directory of one volume replica, addressed by handle.

        Retries once on a stale NFS handle: a server reboot invalidates
        cached handles, the first failure scrubs the client caches, and a
        fresh root + lookup chain recovers.
        """
        from repro.errors import StaleFileHandle

        try:
            return self.volume_root(host, volrep).lookup(op_dir(fh))
        except StaleFileHandle:
            return self.volume_root(host, volrep).lookup(op_dir(fh))
