"""Mapping files to resolvers: declared policy tags and name sniffing.

A file selects its resolver through a *policy tag* — either declared (at
create time, or later via ``set_merge_policy``; the tag lives in the aux
record and propagates with the replica) or sniffed from the entry name
against registered glob patterns.  Both inputs are identical on every
host after directory reconciliation, so tag selection is deterministic:
two hosts facing the same conflict pick the same resolver.

The one ambiguous case — both sides carry a non-empty tag and they
disagree (the tags themselves were set concurrently) — selects *no*
resolver: guessing would let the two hosts merge differently, so the
conflict goes to the owner instead.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

from repro.resolvers.base import Resolver
from repro.resolvers.library import SHIPPED_RESOLVERS


class ResolverRegistry:
    """Resolvers by tag, plus name patterns that imply a tag."""

    def __init__(self) -> None:
        self._by_tag: dict[str, Resolver] = {}
        #: ordered (pattern, tag) pairs; first match wins, so sniffing is
        #: deterministic even when patterns overlap
        self._patterns: list[tuple[str, str]] = []

    def register(self, resolver: Resolver, patterns: tuple[str, ...] = ()) -> None:
        if not resolver.tag:
            raise ValueError(f"{resolver!r} has no policy tag")
        self._by_tag[resolver.tag] = resolver
        for pattern in patterns:
            self.add_pattern(pattern, resolver.tag)

    def add_pattern(self, pattern: str, tag: str) -> None:
        self._patterns.append((pattern, tag))

    def resolver(self, tag: str) -> Resolver | None:
        return self._by_tag.get(tag)

    def tags(self) -> tuple[str, ...]:
        return tuple(self._by_tag)

    def sniff(self, name: str) -> str:
        """The tag implied by an entry name, or ``""``."""
        for pattern, tag in self._patterns:
            if fnmatchcase(name, pattern):
                return tag
        return ""

    def policy_for(self, name: str, local_tag: str = "", remote_tag: str = "") -> str:
        """Select the tag governing a conflict on ``name``.

        Returns ``""`` when the file is not resolver-covered, and also
        when the two sides declared *different* tags — the tags were set
        concurrently, and resolving under either guess would let the two
        hosts merge differently.
        """
        if local_tag and remote_tag and local_tag != remote_tag:
            return ""
        return local_tag or remote_tag or self.sniff(name)

    def covers(self, name: str, tag: str = "") -> bool:
        """Is a file with this name/declared tag handled automatically?"""
        selected = tag or self.sniff(name)
        return bool(selected) and selected in self._by_tag

    def __repr__(self) -> str:
        return f"ResolverRegistry(tags={sorted(self._by_tag)})"


#: default name patterns, in sniff order
DEFAULT_PATTERNS = {
    "append-log": ("*.log", "*.mbox"),
    "kv": ("*.properties", "*.kv", "*.ini"),
    "lww": ("*.lww",),
    "threeway": ("*.3way",),
}


def default_registry() -> ResolverRegistry:
    """The shipped resolver set under the default name patterns."""
    registry = ResolverRegistry()
    for resolver in SHIPPED_RESOLVERS:
        registry.register(resolver, DEFAULT_PATTERNS.get(resolver.tag, ()))
    return registry
