"""Automatic conflict resolution (the paper's anticipated endpoint).

"We anticipate providing a number of automatic resolution strategies for
well-known file types" (paper Section 3.2's outlook).  This package
supplies them: a registry maps a file's declared or sniffed policy tag
to a resolver whose merge is a semilattice join over file contents, so
independent hosts resolving the same conflict commit byte-identical
results and resolutions never re-conflict.
"""

from repro.resolvers.base import ConflictPair, Resolver, ResolverError
from repro.resolvers.engine import ResolveOutcome, auto_resolve_conflict
from repro.resolvers.library import (
    SHIPPED_RESOLVERS,
    AppendLogResolver,
    KeyValueResolver,
    LwwBlobResolver,
    ThreeWayBlockResolver,
)
from repro.resolvers.registry import DEFAULT_PATTERNS, ResolverRegistry, default_registry

__all__ = [
    "AppendLogResolver",
    "ConflictPair",
    "DEFAULT_PATTERNS",
    "KeyValueResolver",
    "LwwBlobResolver",
    "ResolveOutcome",
    "Resolver",
    "ResolverError",
    "ResolverRegistry",
    "SHIPPED_RESOLVERS",
    "ThreeWayBlockResolver",
    "auto_resolve_conflict",
    "default_registry",
]
