"""Resolver contract: what an automatic conflict resolver must guarantee.

The paper treats owner-driven resolution as a stopgap: "we anticipate
providing a number of automatic resolution strategies for well-known file
types" (mailbox append-append merge is its example).  A resolver here is
a *pure function* of the two conflicting versions — no clocks, no host
identity, no I/O — so that two hosts resolving the same conflict
independently produce byte-identical results.  That purity is what makes
auto-resolution safe under optimistic replication:

* **Commutative** — ``merge(a, b) == merge(b, a)``.  The two ends of a
  reconciliation pair see the same conflict with the roles swapped.
* **Associative** — with three or more concurrent versions, different
  hosts resolve different *pairs* first; every bracketing must land on
  the same bytes, or replicas diverge silently at equal version vectors
  (the one failure reconciliation can never detect).
* **Idempotent** — ``merge(a, a) == a``: re-resolving is harmless.

In CRDT terms (Ahmed-Nacer/Martin/Urso, "File system on CRDT"): a
resolver is the join of a semilattice over file contents.  A resolver
that cannot guarantee a join for some input pair must raise
:class:`ResolverError` — the conflict then falls back to the manual
conflict log, which is always safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FicusError
from repro.vv import VersionVector


class ResolverError(FicusError):
    """A resolver declined the merge; the conflict goes to the owner."""

    errno_name = "ERESOLVE"


@dataclass(frozen=True)
class ConflictPair:
    """The two concurrent versions a resolver is asked to join.

    ``local``/``remote`` label which side is which *on the resolving
    host*; a correct resolver never treats them asymmetrically (the peer
    host sees the same pair with the labels swapped).  The ancestor
    fields carry each side's retained common-ancestor block digests
    (empty tuple = no ancestor on record); only the three-way resolver
    consumes them.
    """

    local: bytes
    remote: bytes
    local_vv: VersionVector = field(default_factory=VersionVector)
    remote_vv: VersionVector = field(default_factory=VersionVector)
    local_ancestor: tuple[str, ...] | None = None
    remote_ancestor: tuple[str, ...] | None = None


class Resolver:
    """Base class for automatic per-type conflict resolvers."""

    #: the policy tag files carry (aux ``mpol`` field) to select this resolver
    tag = ""

    def merge(self, pair: ConflictPair) -> bytes:
        """Join the two versions, or raise :class:`ResolverError`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tag={self.tag!r})"
