"""The shipped resolvers: four semilattice joins over file contents.

Each resolver's merge is commutative, associative, and idempotent (or it
refuses), so pairwise resolution cascades across any number of replicas
converge to the same bytes regardless of resolution order — the property
the registry's determinism contract rests on (see ``base.py``).
"""

from __future__ import annotations

from repro.physical.wire import content_digest, split_blocks
from repro.resolvers.base import ConflictPair, Resolver, ResolverError


def _log_records(contents: bytes) -> set[bytes]:
    """A log's record set: its non-empty lines."""
    return {line for line in contents.split(b"\n") if line}


class AppendLogResolver(Resolver):
    """Append-only logs (the paper's mailbox example): record-set union.

    Each line is one appended record.  The merged log is the union of
    both sides' record sets, rendered in a deterministic total order
    (byte order of the records — the role the issue's "(vv, replica_id)"
    ordering plays: *some* total order every host computes identically).
    A set join is the only rendering that stays associative through
    multi-replica cascades: any scheme that preserves one side's local
    ordering resolves ``merge(merge(a,b),c)`` and ``merge(a,merge(b,c))``
    to different byte sequences at equal version vectors — silent
    divergence, the one failure reconciliation cannot detect.  The price
    is canonicalization: appends should carry their own ordering key
    (timestamp, sequence number) in the record, as real mailboxes do.
    """

    tag = "append-log"

    def merge(self, pair: ConflictPair) -> bytes:
        records = sorted(_log_records(pair.local) | _log_records(pair.remote))
        return b"\n".join(records) + b"\n" if records else b""


def _kv_records(contents: bytes) -> dict[bytes, bytes | None]:
    """Parse ``key=value`` lines; a bare line is a key with no value."""
    out: dict[bytes, bytes | None] = {}
    for line in contents.split(b"\n"):
        if not line:
            continue
        if b"=" in line:
            key, _, value = line.partition(b"=")
            existing = out.get(key)
            # repeated key within one file: keep the join (max) so parsing
            # itself is idempotent under re-merge
            out[key] = value if existing is None or value > existing else existing
        else:
            out.setdefault(line, None)
    return out


class KeyValueResolver(Resolver):
    """Property files: per-key merge with a deterministic tie-break.

    Keys present on only one side survive (an unseen assignment is never
    lost); a key both sides changed takes the greater value under byte
    order.  Per-key ``max`` is a semilattice join, so any cascade of
    pairwise resolutions converges key-by-key.  Without synchronized
    clocks there is no true "last" writer across a partition — the
    deterministic tie-break is the honest substitute.
    """

    tag = "kv"

    def merge(self, pair: ConflictPair) -> bytes:
        local, remote = _kv_records(pair.local), _kv_records(pair.remote)
        merged: dict[bytes, bytes | None] = dict(local)
        for key, value in remote.items():
            existing = merged.get(key)
            if key not in merged:
                merged[key] = value
            elif value is not None and (existing is None or value > existing):
                merged[key] = value
        lines = [
            key if value is None else key + b"=" + value
            for key, value in sorted(merged.items())
        ]
        return b"\n".join(lines) + b"\n" if lines else b""


class LwwBlobResolver(Resolver):
    """Opaque blobs: one whole version wins, chosen deterministically.

    "Last writer" is undefined across a partition (no common clock), so
    the winner is the maximum under a total order on the candidate
    contents — ``(digest, bytes)``.  ``max`` over a fixed order is a
    semilattice join: with three concurrent versions, every pairwise
    resolution order elects the same global winner, so resolutions of
    resolutions compare EQUAL instead of re-conflicting.
    """

    tag = "lww"

    def merge(self, pair: ConflictPair) -> bytes:
        return max(pair.local, pair.remote, key=lambda c: (content_digest(c), c))


class ThreeWayBlockResolver(Resolver):
    """Three-way merge against the retained common-ancestor block digests.

    Usable only when both replicas retained the *same* ancestor record
    (``AuxAttributes`` carries it; it is refreshed at every sync point —
    create, pull commit, observed-equal reconciliation, resolution
    install).  Per block: a side whose block still matches the ancestor
    digest lost nothing there, so the other side's block wins; if both
    sides changed the same block the merge refuses and the conflict goes
    to the owner.  Refusal rather than guessing keeps the subsystem
    deterministic: the one case a block merge cannot join is exactly the
    case the paper reports to the owner.
    """

    tag = "threeway"

    def merge(self, pair: ConflictPair) -> bytes:
        anc = pair.local_ancestor
        if anc is None or pair.remote_ancestor is None:
            raise ResolverError("no retained common ancestor on one side")
        if anc != pair.remote_ancestor:
            raise ResolverError("replicas retained different ancestors")
        local_blocks = split_blocks(pair.local)
        remote_blocks = split_blocks(pair.remote)
        pieces: list[bytes] = []
        for index in range(max(len(local_blocks), len(remote_blocks), len(anc))):
            lblk = local_blocks[index] if index < len(local_blocks) else None
            rblk = remote_blocks[index] if index < len(remote_blocks) else None
            ablk = anc[index] if index < len(anc) else None
            ldig = content_digest(lblk) if lblk is not None else None
            rdig = content_digest(rblk) if rblk is not None else None
            if ldig == rdig:
                chosen = lblk  # identical on both sides (or both absent)
            elif ldig == ablk:
                chosen = rblk  # only the remote side changed this block
            elif rdig == ablk:
                chosen = lblk  # only the local side changed this block
            else:
                raise ResolverError(f"both sides changed block {index}")
            if chosen:
                pieces.append(chosen)
        return b"".join(pieces)


#: the shipped resolver set, in registry-default order
SHIPPED_RESOLVERS = (
    AppendLogResolver(),
    KeyValueResolver(),
    LwwBlobResolver(),
    ThreeWayBlockResolver(),
)
