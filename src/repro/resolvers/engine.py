"""Invoking a resolver on a detected conflict and installing the merge.

The reconciliation walk calls :func:`auto_resolve_conflict` the moment a
pull reports CONCURRENT version vectors.  On success the merged contents
are installed through the same dominate-and-propagate mechanism manual
resolution uses — a shadow write followed by an atomic commit whose
version vector is ``local_vv.merge(remote_vv)``.  The merge (pointwise
max, *no* bump) is deliberate:

* it is a pure function of the two inputs, so both hosts commit the
  identical vector and the identical bytes — the next reconciliation
  round compares them EQUAL and resolutions never re-conflict;
* it strictly dominates both concurrent inputs, so the resolution
  propagates to (and supersedes) every replica holding either version;
* it can never swallow an unseen third-replica update: such an update
  has a vv concurrent with (or dominating) the merge, so it surfaces as
  a fresh conflict instead of being silently shadowed.
"""

from __future__ import annotations

import enum

from repro.errors import FileNotFound, HostUnreachable, StaleFileHandle
from repro.physical import ReplicaStore
from repro.physical.wire import op_byfh
from repro.resolvers.base import ConflictPair, ResolverError
from repro.resolvers.registry import ResolverRegistry
from repro.util import FicusFileHandle
from repro.vnode.interface import Vnode, read_whole


class ResolveOutcome(enum.Enum):
    RESOLVED = "resolved"  # merged contents committed locally
    FALLBACK = "fallback"  # covered, but the resolver declined or failed
    NOT_COVERED = "not-covered"  # no resolver governs this file
    UNREACHABLE = "unreachable"  # partition mid-resolve; retry next round


def auto_resolve_conflict(
    store: ReplicaStore,
    parent_fh: FicusFileHandle,
    fh: FicusFileHandle,
    name: str,
    remote_dir: Vnode,
    pull,
    registry: ResolverRegistry,
    conflict_log=None,
    health=None,
) -> ResolveOutcome:
    """Try to resolve one concurrent-update conflict automatically.

    ``pull`` is the CONFLICT-outcome :class:`~repro.recon.propagate.PullResult`
    (its ``remote_aux`` carries the remote's policy tag and ancestor).
    Resolution is local-commit-only: the merged version propagates to the
    remote by the normal mechanisms — and since the remote resolves the
    mirror-image conflict to the same bytes and the same vector, the two
    commits reconcile as EQUAL.
    """
    parent_fh = parent_fh.logical
    fh = fh.logical
    if not store.has_file(parent_fh, fh):
        return ResolveOutcome.NOT_COVERED  # entry-only replica; nothing to merge
    local_aux = store.read_file_aux(parent_fh, fh)
    remote_aux = getattr(pull, "remote_aux", None)
    remote_tag = remote_aux.merge_policy if remote_aux is not None else ""
    tag = registry.policy_for(name, local_aux.merge_policy, remote_tag)
    if not tag:
        if local_aux.merge_policy and remote_tag:
            # both sides declared a policy and they disagree: covered but
            # unresolvable until an owner settles the tag itself
            _note_fallback(health, name, fh, "policy-tags-disagree", pull)
            return ResolveOutcome.FALLBACK
        return ResolveOutcome.NOT_COVERED
    resolver = registry.resolver(tag)
    if resolver is None:
        _note_fallback(health, name, fh, f"no resolver registered for {tag!r}", pull)
        return ResolveOutcome.FALLBACK

    try:
        remote_contents = read_whole(remote_dir.lookup(op_byfh(fh)))
    except (HostUnreachable, StaleFileHandle):
        return ResolveOutcome.UNREACHABLE
    except FileNotFound:
        return ResolveOutcome.UNREACHABLE  # remote entry raced away; retry
    local_contents = store.file_vnode(parent_fh, fh).read_all()

    pair = ConflictPair(
        local=local_contents,
        remote=remote_contents,
        local_vv=pull.local_vv,
        remote_vv=pull.remote_vv,
        local_ancestor=local_aux.ancestor_digests(),
        remote_ancestor=remote_aux.ancestor_digests() if remote_aux is not None else None,
    )
    try:
        merged = resolver.merge(pair)
    except ResolverError as exc:
        _note_fallback(health, name, fh, str(exc), pull, tag=tag)
        return ResolveOutcome.FALLBACK

    resolved_vv = pull.local_vv.merge(pull.remote_vv)
    shadow = store.shadow_vnode(parent_fh, fh, create=True)
    shadow.truncate(0)
    if merged:
        shadow.write(0, merged)
    store.commit_shadow(parent_fh, fh, resolved_vv)
    if local_aux.merge_policy != tag:
        # adopt the governing tag (declared remotely or sniffed) so later
        # conflicts need no sniff; no vv bump — the tag is determined by
        # the same inputs on every host, so this cannot diverge
        aux = store.read_file_aux(parent_fh, fh)
        aux.merge_policy = tag
        store.write_file_aux(parent_fh, fh, aux)
    if conflict_log is not None:
        conflict_log.mark_resolved(fh, resolved_vv)
    if health is not None:
        health.resolution_applied(
            name=name,
            fh=fh.to_hex(),
            tag=tag,
            local_vv=pull.local_vv,
            remote_vv=pull.remote_vv,
            resolved_vv=resolved_vv,
        )
    return ResolveOutcome.RESOLVED


def _note_fallback(
    health, name: str, fh: FicusFileHandle, reason: str, pull, tag: str = ""
) -> None:
    if health is not None:
        health.resolution_fallback(
            name=name,
            fh=fh.to_hex(),
            tag=tag,
            reason=reason,
            local_vv=pull.local_vv,
            remote_vv=pull.remote_vv,
        )
