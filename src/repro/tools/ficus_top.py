"""``ficus_top``: the cluster consistency dashboard.

Renders the health table an operator reads before trusting a replica —
per host: pending new-version notes, reconciliation staleness, peers the
daemons are routing around, volumes suspected of divergence, anomaly
counts.  Works against a live :class:`~repro.sim.FicusSystem` (in-process)
or offline against a flight-recorder dump written when an anomaly fired::

    python -m repro.tools.ficus_top --demo          # live demo cluster
    python -m repro.tools.ficus_top dump.jsonl ...  # offline evidence

The offline mode is the second half of the flight-recorder story: a
failing chaos seed leaves ``ficus_flight_*.jsonl`` files behind, and this
tool turns one into the last-N-operations timeline plus the health state
at the moment the oracle fired.
"""

from __future__ import annotations

import argparse

from repro.telemetry import HostHealth, load_dump

#: ring-tail length shown per dump by default
DEFAULT_OPS_SHOWN = 16

_COLUMNS = [
    "host",
    "up",
    "topo",
    "fanout",
    "notes",
    "stale",
    "stale_s",
    "degraded",
    "suspected",
    "resolved",
    "anomalies",
]


def _table(rows: list[list[str]]) -> str:
    widths = [
        max(len(_COLUMNS[i]), max((len(row[i]) for row in rows), default=0))
        for i in range(len(_COLUMNS))
    ]
    lines = [
        "  ".join(name.ljust(widths[i]) for i, name in enumerate(_COLUMNS)),
        "  ".join("-" * widths[i] for i in range(len(_COLUMNS))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _row(health: HostHealth) -> list[str]:
    suspected = ";".join(
        f"{volume}<-{','.join(peers)}" for volume, peers in sorted(health.suspected.items())
    )
    return [
        health.host,
        "up" if health.up else "DOWN",
        health.topology,
        str(health.fanout),
        str(health.notes_pending),
        str(health.max_staleness),
        f"{health.max_staleness_seconds:g}",
        ",".join(health.degraded_peers) or "-",
        suspected or "-",
        f"{health.resolver_auto_resolved}+{health.resolver_fallback_manual}m"
        if health.resolver_auto_resolved or health.resolver_fallback_manual
        else "-",
        str(sum(health.anomalies.values())) or "0",
    ]


def render_health_table(healths: list[HostHealth]) -> str:
    """The cluster table from already-collected per-host health records."""
    return _table([_row(h) for h in healths])


def render_system(system) -> str:
    """The live cluster health table of a :class:`~repro.sim.FicusSystem`."""
    healths = [system.host(name).health() for name in sorted(system.hosts)]
    header = f"ficus_top @ t={system.clock.now():.1f}s, {len(healths)} hosts"
    return header + "\n" + render_health_table(healths)


def render_dump(path: str, ops_shown: int = DEFAULT_OPS_SHOWN) -> str:
    """Render one flight-recorder JSONL dump for offline inspection."""
    snapshot = load_dump(path)
    lines = [
        f"flight recorder dump: {path}",
        f"  anomaly: {snapshot.get('kind', '?')} on host "
        f"{snapshot.get('host', '?')} at t={snapshot.get('at', 0.0)}",
    ]
    detail = snapshot.get("detail") or {}
    if detail:
        rendered = ", ".join(f"{key}={value}" for key, value in sorted(detail.items()))
        lines.append(f"  detail: {rendered}")

    health = snapshot.get("health") or {}
    if health:
        lines.append("")
        lines.append(
            render_health_table(
                [
                    HostHealth(
                        host=health.get("host", snapshot.get("host", "?")),
                        topology=health.get("topology", "full_mesh"),
                        fanout=health.get("fanout", 0),
                        notes_pending=health.get("notes_pending", 0),
                        staleness_ticks=health.get("staleness_ticks", {}),
                        staleness_seconds=health.get("staleness_seconds", {}),
                        suspected=health.get("suspected", {}),
                        anomalies=health.get("anomalies", {}),
                        resolver_auto_resolved=health.get("resolver_auto_resolved", 0),
                        resolver_fallback_manual=health.get("resolver_fallback_manual", 0),
                        last_resolutions=health.get("last_resolutions", []),
                    )
                ]
            )
        )

    resolutions = (health or {}).get("last_resolutions") or []
    if resolutions:
        lines.append("")
        lines.append("  recent automatic conflict resolutions:")
        for entry in resolutions:
            lines.append(
                f"    t={entry.get('at', 0.0)} {entry.get('name')}[{entry.get('tag')}] "
                f"{entry.get('local_vv')} x {entry.get('remote_vv')} "
                f"-> {entry.get('resolved_vv')}"
            )

    recon = snapshot.get("last_recon") or []
    if recon:
        lines.append("")
        lines.append("  recent reconciliation outcomes:")
        for outcome in recon:
            status = "ok" if outcome.get("ok") else "ABORTED"
            lines.append(
                f"    t={outcome.get('at', 0.0)} volume={outcome.get('volume')} "
                f"peer={outcome.get('peer')} {status} "
                f"conflicts={outcome.get('conflicts', 0)}"
            )

    ops = snapshot.get("ops") or []
    if ops:
        lines.append("")
        lines.append(f"  last {min(ops_shown, len(ops))} of {len(ops)} recorded ops:")
        for at, op, target, trace in ops[-ops_shown:]:
            suffix = f"  [trace {trace}]" if trace else ""
            lines.append(f"    t={at} {op} {target}{suffix}")
    return "\n".join(lines)


def render_timeline(paths: list[str], ops_shown: int = 0) -> str:
    """Merge several hosts' flight dumps into one incident timeline.

    Every recorded operation and provenance event from every dump lands
    on the shared virtual clock (the simulation has one clock, so ``at``
    values are directly comparable across hosts), prefixed with the host
    it happened on.  Trace ids that appear on more than one host are
    flagged — those are the cross-host causal threads (a write on one
    host surfacing as a pull on another) an operator follows first.
    """
    entries: list[tuple[float, str, str, str]] = []  # (at, host, text, trace)
    anomalies: list[str] = []
    for path in paths:
        snapshot = load_dump(path)
        host = snapshot.get("host", path)
        if snapshot.get("kind"):
            anomalies.append(
                f"  t={snapshot.get('at', 0.0):g} {host}: ANOMALY {snapshot['kind']}"
            )
        for at, op, target, trace in snapshot.get("ops", []):
            entries.append((float(at), host, f"{op} {target}", trace or ""))
        for rec in snapshot.get("prov", []):
            vv = rec.get("vv") or "genesis"
            origin = f" from {rec['origin']}" if rec.get("origin") else ""
            detail = f" [{rec['detail']}]" if rec.get("detail") else ""
            entries.append(
                (
                    float(rec.get("at", 0.0)),
                    rec.get("host", host),
                    f"version {rec.get('kind')} {rec.get('fh', '')[:8]} -> {vv}{origin}{detail}",
                    rec.get("trace", ""),
                )
            )
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    if ops_shown:
        entries = entries[-ops_shown:]

    trace_hosts: dict[str, set[str]] = {}
    for _, host, _, trace in entries:
        if trace:
            trace_hosts.setdefault(trace, set()).add(host)
    cross = {trace for trace, hosts in trace_hosts.items() if len(hosts) > 1}

    width = max((len(host) for _, host, _, _ in entries), default=4)
    lines = [f"incident timeline from {len(paths)} dump(s), {len(entries)} events"]
    lines.extend(anomalies)
    for at, host, text, trace in entries:
        suffix = ""
        if trace:
            marker = " <-- spans hosts" if trace in cross else ""
            suffix = f"  [trace {trace}]{marker}"
        lines.append(f"  t={at:<8g} {host.ljust(width)}  {text}{suffix}")
    return "\n".join(lines)


def _demo_system():
    """A tiny partitioned cluster whose health table is worth looking at."""
    from repro.sim import FicusSystem

    system = FicusSystem(["alpha", "beta", "gamma"])
    fs = system.host("alpha").fs()
    fs.mkdir("/project")
    fs.write_file("/project/notes", b"first draft")
    system.reconcile_everything()
    system.partition([{"alpha"}, {"beta", "gamma"}])
    fs.write_file("/project/notes", b"partitioned edit")
    for name in system.hosts:
        system.host(name).recon_daemon.tick()
    return system


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Ficus cluster health inspector")
    parser.add_argument("dumps", nargs="*", help="flight-recorder JSONL dump files")
    parser.add_argument(
        "--demo", action="store_true", help="render a small partitioned demo cluster"
    )
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS_SHOWN)
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="merge all dumps into one cross-host incident timeline",
    )
    args = parser.parse_args(argv)

    if not args.dumps and not args.demo:
        parser.error("give at least one dump file, or --demo")
    if args.demo:
        print(render_system(_demo_system()))
    if args.timeline and args.dumps:
        print(render_timeline(args.dumps))
        return 0
    for path in args.dumps:
        print(render_dump(path, ops_shown=args.ops))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
