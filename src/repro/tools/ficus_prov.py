"""``ficus_prov``: query the version-provenance DAG of an incident.

The per-host provenance ledgers ride along in every flight-recorder dump
(``prov`` records), so the operator workflow is: a chaos seed or a real
divergence leaves ``ficus_flight_*.jsonl`` files behind, and this tool
composes them into the cross-replica version DAG and answers the three
questions the paper leaves to the "owner": what is the lineage of this
file, who wrote this version, and which writes fed each side of a
conflict.

::

    python -m repro.tools.ficus_prov dump1.jsonl dump2.jsonl            # overview
    python -m repro.tools.ficus_prov dumps... --lineage <fh-prefix>
    python -m repro.tools.ficus_prov dumps... --who-wrote <fh> --vv 1:3
    python -m repro.tools.ficus_prov dumps... --feeds <fh-prefix>
    python -m repro.tools.ficus_prov dumps... --dot <fh-prefix> > dag.dot
    python -m repro.tools.ficus_prov --demo --feeds 0000

File handles may be abbreviated to any unique hex prefix.
"""

from __future__ import annotations

import argparse

from repro.telemetry import VersionDAG, load_dump


def dag_from_dumps(paths: list[str]) -> VersionDAG:
    """Compose one DAG from the ``prov`` records of several flight dumps."""
    dag = VersionDAG()
    for path in paths:
        snapshot = load_dump(path)
        dag2 = VersionDAG.from_records(snapshot.get("prov", []))
        for node in dag2.nodes.values():
            for event in node.events:
                dag.add_event(event)
    return dag


def resolve_handle(dag: VersionDAG, prefix: str) -> str:
    """Expand an abbreviated file handle to the unique full one."""
    matches = [fh for fh in dag.file_handles() if fh.startswith(prefix)]
    if not matches:
        raise SystemExit(f"ficus_prov: no file handle matches {prefix!r}")
    if len(matches) > 1:
        listing = ", ".join(matches[:8])
        raise SystemExit(f"ficus_prov: ambiguous handle {prefix!r}: {listing}")
    return matches[0]


def render_overview(dag: VersionDAG) -> str:
    lines = [f"{len(dag.file_handles())} files, {len(dag.nodes)} versions"]
    for fh in dag.file_handles():
        nodes = dag.nodes_for(fh)
        heads = dag.heads(fh)
        flag = ""
        if len(heads) >= 2:
            flag = "  CONFLICT"
        elif len(heads) == 1 and heads[0].is_merge:
            flag = "  resolved"
        head_vvs = ",".join(h.vv or "genesis" for h in heads)
        lines.append(f"  {fh}  versions={len(nodes)} heads={head_vvs}{flag}")
    return "\n".join(lines)


def render_lineage(dag: VersionDAG, fh: str) -> str:
    lines = [f"lineage of {fh} (oldest first):"]
    for node in dag.lineage(fh):
        minted = node.minted_by()
        if minted:
            host, at, kind = minted[0]
            origin = f"{kind} by {host} at t={at:g}"
        elif node.events:
            event = node.events[0]
            origin = f"{event.kind} via {event.origin or event.host} at t={event.at:g}"
        else:
            origin = "(outside ring retention)"
        parents = ",".join(sorted(p or "genesis" for p in node.parents)) or "-"
        replicas = ",".join(sorted(node.hosts)) or "-"
        lines.append(
            f"  {node.vv or 'genesis':<16} <- {parents:<24} {origin}; on {replicas}"
        )
    return "\n".join(lines)


def render_who_wrote(dag: VersionDAG, fh: str, vv: str) -> str:
    writers = dag.who_wrote(fh, vv)
    if not writers:
        return f"no recorded minting event for {fh} @ {vv or 'genesis'}"
    lines = [f"version {vv or 'genesis'} of {fh} was minted by:"]
    for host, at, kind in writers:
        lines.append(f"  {host}  t={at:g}  ({kind})")
    return "\n".join(lines)


def render_feeds(dag: VersionDAG, fh: str) -> str:
    feeds = dag.feeds_of_conflict(fh)
    if not feeds:
        return f"{fh}: no conflict (fewer than two branches)"
    lines = [f"conflict branches of {fh} and the writes feeding them:"]
    for branch in sorted(feeds):
        lines.append(f"  branch {branch or 'genesis'}:")
        for event in sorted(feeds[branch], key=lambda e: (e.at, e.host)):
            note = f" [{event.detail}]" if event.detail else ""
            lines.append(
                f"    t={event.at:g}  {event.host}  {event.kind}  -> {event.vv or 'genesis'}{note}"
            )
    return "\n".join(lines)


def _demo_dag() -> VersionDAG:
    """A partitioned two-host cluster with one resolved conflict."""
    from repro.sim import FicusSystem

    system = FicusSystem(["west", "east"])
    system.enable_resolvers()
    west = system.host("west").fs()
    east = system.host("east").fs()
    west.mkdir("/d")
    west.write_file("/d/log", b"base\n")
    west.set_merge_policy("/d/log", "append-log")
    system.reconcile_everything()
    system.partition([{"west"}, {"east"}])
    west.write_file("/d/log", b"base\nwest\n")
    east.write_file("/d/log", b"base\neast\n")
    system.heal()
    system.reconcile_everything(rounds=4)
    return system.provenance_dag()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Ficus version-provenance inspector")
    parser.add_argument("dumps", nargs="*", help="flight-recorder JSONL dump files")
    parser.add_argument("--demo", action="store_true", help="use a built-in demo cluster")
    parser.add_argument("--lineage", metavar="FH", help="print the version history of one file")
    parser.add_argument("--who-wrote", metavar="FH", help="print who minted --vv of this file")
    parser.add_argument("--vv", default="", help="encoded version vector for --who-wrote")
    parser.add_argument("--feeds", metavar="FH", help="print the write set feeding each conflict branch")
    parser.add_argument("--jsonl", nargs="?", const="*", metavar="FH", help="export nodes as JSONL")
    parser.add_argument("--dot", nargs="?", const="*", metavar="FH", help="export the DAG as Graphviz dot")
    args = parser.parse_args(argv)

    if not args.dumps and not args.demo:
        parser.error("give at least one dump file, or --demo")
    dag = _demo_dag() if args.demo else dag_from_dumps(args.dumps)

    ran_query = False
    if args.lineage:
        print(render_lineage(dag, resolve_handle(dag, args.lineage)))
        ran_query = True
    if args.who_wrote:
        print(render_who_wrote(dag, resolve_handle(dag, args.who_wrote), args.vv))
        ran_query = True
    if args.feeds:
        print(render_feeds(dag, resolve_handle(dag, args.feeds)))
        ran_query = True
    if args.jsonl:
        fh = None if args.jsonl == "*" else resolve_handle(dag, args.jsonl)
        for line in dag.to_jsonl(fh):
            print(line)
        ran_query = True
    if args.dot:
        fh = None if args.dot == "*" else resolve_handle(dag, args.dot)
        print(dag.to_dot(fh))
        ran_query = True
    if not ran_query:
        print(render_overview(dag))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
