"""repro — a reproduction of the Ficus replicated file system (USENIX 1990).

Ficus is an optimistically replicated file system built as a stack of vnode
layers.  This package reimplements the whole stack in Python over simulated
storage and a simulated network:

* :mod:`repro.storage` — block devices with exact I/O accounting
* :mod:`repro.ufs` — the UFS substrate (inodes, buffer cache, DNLC)
* :mod:`repro.vnode` — the stackable vnode layer framework
* :mod:`repro.net` / :mod:`repro.nfs` — simulated network and stateless NFS
* :mod:`repro.vv` — version vectors (Parker et al.)
* :mod:`repro.physical` / :mod:`repro.logical` — the two Ficus layers
* :mod:`repro.recon` — file and directory reconciliation
* :mod:`repro.volume` — volumes, graft points, autografting
* :mod:`repro.baselines` — primary copy / voting / quorum comparators
* :mod:`repro.sim` — discrete-event cluster simulation and daemons
* :mod:`repro.workload` — trace and partition generators
* :mod:`repro.core` — the public :class:`~repro.core.FicusFileSystem` facade
"""

__version__ = "1.0.0"
