"""Cluster construction: a whole Ficus deployment in one object.

:class:`FicusSystem` assembles, per host, the full stack from Figure 2 of
the paper — UFS on a simulated disk, the physical layer over it, an NFS
server exporting the physical layer, and a logical layer reaching local
and remote physical layers through the fabric — plus the three daemons
and a shared event loop.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import InvalidArgument
from repro.logical import Fabric, FicusLogicalLayer, PHYSICAL_SERVICE, READ_LATEST
from repro.net import Network
from repro.nfs import NfsServer
from repro.physical import FicusPhysicalLayer
from repro.recon import ConflictLog
from repro.sim.daemons import GraftPruneDaemon, PropagationDaemon, ReconciliationDaemon
from repro.sim.events import EventLoop
from repro.sim.topology import Topology, make_topology
from repro.storage import BlockDevice
from repro.telemetry import NULL_TELEMETRY, HealthPlane, HostHealth, Telemetry
from repro.ufs import Ufs
from repro.util import IdAllocator, VirtualClock, VolumeId, VolumeReplicaId
from repro.vnode import UfsLayer
from repro.volume import GraftTable, ReplicaLocation


@dataclass
class HostConfig:
    """Per-host tunables."""

    disk_blocks: int = 16384
    num_inodes: int = 2048
    cache_blocks: int = 512
    name_cache_size: int = 1024
    #: isolate each inode in its own disk block so one inode fetch = one
    #: disk I/O (the accounting unit of the paper's Section 6)
    isolate_inodes: bool = False


@dataclass
class DaemonConfig:
    """Daemon periods (virtual seconds); ``None`` disables a daemon."""

    propagation_period: float | None = 5.0
    propagation_min_age: float = 0.0
    recon_period: float | None = 60.0
    graft_prune_period: float | None = 600.0
    graft_idle_timeout: float = 1800.0


class FicusHost:
    """One host: the complete Figure-2 stack plus its daemons."""

    def __init__(
        self,
        name: str,
        network: Network,
        clock: VirtualClock,
        allocator_id: int,
        config: HostConfig,
        telemetry: Telemetry | None = None,
        health_enabled: bool = True,
    ):
        self.name = name
        self.network = network
        self.clock = clock
        self.telemetry = telemetry or NULL_TELEMETRY
        #: the consistency observability plane (None when disabled); the
        #: plane itself survives crashes — it plays the flight recorder
        self.health_plane: HealthPlane | None = (
            HealthPlane(name, clock=clock.now, telemetry=self.telemetry)
            if health_enabled
            else None
        )
        self.allocator = IdAllocator(allocator_id)
        self.device = BlockDevice(config.disk_blocks, name=f"{name}-disk")
        self.ufs = Ufs.mkfs(
            self.device,
            num_inodes=config.num_inodes,
            clock=clock,
            cache_blocks=config.cache_blocks,
            name_cache_size=config.name_cache_size,
            inode_size=self.device.block_size if config.isolate_inodes else None,
        )
        self.ufs_layer = UfsLayer(self.ufs)
        self.physical = FicusPhysicalLayer(
            self.ufs_layer, name, network=network, clock=clock, telemetry=self.telemetry
        )
        self.physical.health = self.health_plane
        self.nfs_server = NfsServer(
            network, name, self.physical, service=PHYSICAL_SERVICE, telemetry=self.telemetry
        )
        self.graft_table = GraftTable()
        self.fabric = Fabric(
            network, name, self.physical, telemetry=self.telemetry, health=self.health_plane
        )
        self.logical: FicusLogicalLayer | None = None  # wired by FicusSystem
        self.conflict_log = ConflictLog(telemetry=self.telemetry)
        self.conflict_log.health = self.health_plane
        self.propagation_daemon: PropagationDaemon | None = None
        self.recon_daemon: ReconciliationDaemon | None = None
        self.graft_prune_daemon: GraftPruneDaemon | None = None

    def root(self):
        """The user-facing root vnode on this host."""
        return self.logical.root()

    def fs(self):
        """A path-based :class:`~repro.core.FicusFileSystem` on this host."""
        from repro.core import FicusFileSystem

        return FicusFileSystem(self.logical)

    def health(self) -> HostHealth:
        """This host's consistency health as one structured record."""
        degraded: set[str] = set()
        for daemon in (self.propagation_daemon, self.recon_daemon):
            if daemon is not None:
                degraded.update(daemon.peer_health.degraded_hosts())
        topology_name = "full_mesh"
        fanout = 0
        if self.recon_daemon is not None:
            topology = self.recon_daemon.topology
            topology_name = topology.name
            fanout = topology.fanout(self.recon_daemon.max_peer_count())
        if self.health_plane is None:
            return HostHealth(
                host=self.name,
                up=self.network.host_is_up(self.name),
                degraded_peers=sorted(degraded),
                topology=topology_name,
                fanout=fanout,
            )
        return self.health_plane.host_health(
            up=self.network.host_is_up(self.name),
            notes_pending=self.physical.new_version_cache_size,
            degraded_peers=degraded,
            topology=topology_name,
            fanout=fanout,
        )

    def _degraded_probe(self, peer: str) -> bool:
        """Is ``peer`` currently being routed around by either daemon?"""
        for daemon in (self.propagation_daemon, self.recon_daemon):
            if daemon is not None and daemon.peer_health.is_degraded(peer):
                return True
        return False

    def crash(self) -> None:
        """Crash this host: unreachable, volatile state gone on restart."""
        self.network.set_host_up(self.name, False)

    def restart(self, system: "FicusSystem") -> None:
        """Reboot: remount the (surviving) disk, rebuild every layer.

        Everything volatile — buffer cache, DNLC, NFS handle cache, new-
        version cache, open sessions, grafts — is lost; everything on the
        simulated disk (files, directories, version vectors, tombstone
        state, id-mint counters) survives.  Persisted volume replicas are
        re-attached by scanning the disk, and orphan shadow files left by
        the crash are scavenged.
        """
        hosted = list(self.physical.stores)
        # the dying stack's datagram subscriptions go with it — leaking
        # them would deliver every future notification to the dead layers
        # too, double-recording flight/ledger entries via the (surviving)
        # health plane and growing the dead new-version cache forever
        self.network.unregister_datagram_handler(self.name, self.physical._on_datagram)
        if self.logical is not None:
            self.network.unregister_datagram_handler(self.name, self.logical._on_datagram)
        self.ufs = self.ufs.remount()
        self.ufs_layer = UfsLayer(self.ufs)
        self.physical = FicusPhysicalLayer(
            self.ufs_layer,
            self.name,
            network=self.network,
            clock=self.clock,
            telemetry=self.telemetry,
        )
        self.physical.health = self.health_plane
        for volrep in hosted:
            store = self.physical.attach_volume_replica(volrep)
            for dir_fh in store.all_directory_handles():
                store.scavenge_shadows(dir_fh)
        self.nfs_server.exported = self.physical
        self.nfs_server.reboot()
        self.fabric = Fabric(
            self.network,
            self.name,
            self.physical,
            telemetry=self.telemetry,
            health=self.health_plane,
        )
        self.logical = FicusLogicalLayer(
            self.network,
            self.name,
            self.fabric,
            self.graft_table,
            self.logical.root_volume,
            read_policy=self.logical.read_policy,
            telemetry=self.telemetry,
        )
        self.logical.health = self.health_plane
        self.logical.degraded_probe = self._degraded_probe
        self.propagation_daemon.physical = self.physical
        self.propagation_daemon.fabric = self.fabric
        self.propagation_daemon.logical = self.logical
        self.recon_daemon.physical = self.physical
        self.recon_daemon.fabric = self.fabric
        self.recon_daemon.logical = self.logical
        # volatile daemon policy state dies with the host: a rebooted host
        # must not keep routing around peers on pre-crash skip credits or
        # resume a pre-crash ring/gossip schedule
        self.propagation_daemon.reboot()
        self.recon_daemon.reboot()
        self.graft_prune_daemon.logical = self.logical
        self.network.set_host_up(self.name, True)

    def __repr__(self) -> str:
        return f"FicusHost({self.name})"


class FicusSystem:
    """A complete simulated Ficus deployment."""

    def __init__(
        self,
        host_names: list[str],
        root_volume_hosts: list[str] | None = None,
        host_config: HostConfig | None = None,
        daemon_config: DaemonConfig | None = None,
        read_policy: str = READ_LATEST,
        telemetry: Telemetry | None = None,
        health: bool = True,
        resolvers=None,
        topology: str | Topology | None = None,
    ):
        if not host_names:
            raise InvalidArgument("need at least one host")
        self.clock = VirtualClock()
        self.telemetry = telemetry or NULL_TELEMETRY
        #: the cluster-wide peer-selection strategy both daemons consult;
        #: defaults to the historical full mesh
        self.topology = make_topology(topology)
        #: shared ResolverRegistry for automatic conflict resolution (every
        #: host must run the same registry, or resolutions could diverge)
        self.resolvers = resolvers
        # all timestamps (spans, events) come from the shared virtual clock
        # so a replayed experiment yields byte-identical telemetry
        self.telemetry.bind_clock(self.clock.now)
        self.network = Network(clock=self.clock, telemetry=self.telemetry)
        self.loop = EventLoop(self.clock)
        self.host_config = host_config or HostConfig()
        self.daemon_config = daemon_config or DaemonConfig()
        self.hosts: dict[str, FicusHost] = {}
        for index, name in enumerate(host_names, start=1):
            self.network.add_host(name)
            self.hosts[name] = FicusHost(
                name,
                self.network,
                self.clock,
                allocator_id=index,
                config=self.host_config,
                telemetry=self.telemetry,
                health_enabled=health,
            )

        # the root volume, replicated where asked (default: everywhere)
        placements = root_volume_hosts or host_names
        first = self.hosts[host_names[0]]
        self.root_volume: VolumeId = first.allocator.new_volume_id()
        self.root_locations = self._place_volume(self.root_volume, placements)

        for name, host in self.hosts.items():
            host.graft_table.learn(self.root_volume, self.root_locations)
            host.logical = FicusLogicalLayer(
                self.network,
                name,
                host.fabric,
                host.graft_table,
                self.root_volume,
                read_policy=read_policy,
                telemetry=self.telemetry,
            )
            host.logical.health = host.health_plane
            self._wire_daemons(host)

    # -- volume management -----------------------------------------------

    def _place_volume(self, volume: VolumeId, placements: list[str]) -> list[ReplicaLocation]:
        locations = []
        for replica_id, host_name in enumerate(placements, start=1):
            host = self.hosts[host_name]
            volrep = VolumeReplicaId(volume, replica_id)
            host.physical.create_volume_replica(volrep)
            locations.append(ReplicaLocation(volrep, host_name))
        return locations

    def create_volume(
        self, placements: list[str], learn_locations: bool = False
    ) -> tuple[VolumeId, list[ReplicaLocation]]:
        """Mint a new volume and create its replicas on ``placements``.

        With ``learn_locations`` every replica host's graft table learns
        the replica set immediately, so reconciliation can send update
        notifications without the volume ever being grafted into a
        namespace — what a fleet-scale benchmark wants.  The default
        leaves discovery to grafting, the paper's path.
        """
        minting_host = self.hosts[placements[0]]
        volume = minting_host.allocator.new_volume_id()
        locations = self._place_volume(volume, placements)
        for location in locations:
            daemon = self.hosts[location.host].recon_daemon
            if daemon is not None:
                daemon.set_peers(location.volrep, locations)
            if learn_locations:
                self.hosts[location.host].graft_table.learn(volume, locations)
        return volume, locations

    def place_volumes(
        self, count: int, replicas_per_volume: int = 2
    ) -> list[tuple[VolumeId, list[ReplicaLocation]]]:
        """Mint ``count`` volumes, sharding their replicas by stable hash.

        Replica sets are placed consistent-hash style: volume *i*'s first
        replica lands on the host at ``crc32("shard:i") mod n`` in sorted
        host order and the remaining replicas on that host's successors,
        so a 500-host cluster ends up with every host storing roughly
        ``count * replicas / n`` replicas instead of one root volume
        replicated everywhere.  The mapping is a pure function of the
        volume index and the sorted host list — no coordination, stable
        across runs.
        """
        if count < 0:
            raise InvalidArgument("count must be >= 0")
        names = sorted(self.hosts)
        if not 1 <= replicas_per_volume <= len(names):
            raise InvalidArgument(
                f"replicas_per_volume must be in [1, {len(names)}], "
                f"got {replicas_per_volume}"
            )
        placed = []
        for index in range(count):
            start = zlib.crc32(f"shard:{index}".encode()) % len(names)
            placements = [
                names[(start + offset) % len(names)]
                for offset in range(replicas_per_volume)
            ]
            placed.append(self.create_volume(placements, learn_locations=True))
        return placed

    # -- daemons ------------------------------------------------------------

    def _wire_daemons(self, host: FicusHost) -> None:
        cfg = self.daemon_config
        host.propagation_daemon = PropagationDaemon(
            host.physical,
            host.fabric,
            min_age=cfg.propagation_min_age,
            logical=host.logical,
            topology=self.topology,
        )
        peers = {
            loc.volrep: [o for o in self.root_locations if o.volrep != loc.volrep]
            for loc in self.root_locations
            if loc.host == host.name
        }
        host.recon_daemon = ReconciliationDaemon(
            host.physical,
            host.fabric,
            host.conflict_log,
            peers,
            logical=host.logical,
            resolvers=self.resolvers,
            topology=self.topology,
        )
        host.graft_prune_daemon = GraftPruneDaemon(
            host.logical, idle_timeout=cfg.graft_idle_timeout
        )
        if host.health_plane is not None:
            host.health_plane.topology = self.topology.name
        host.logical.degraded_probe = host._degraded_probe
        if cfg.propagation_period is not None:
            self.loop.schedule_every(cfg.propagation_period, host.propagation_daemon.tick)
        if cfg.recon_period is not None:
            self.loop.schedule_every(cfg.recon_period, host.recon_daemon.tick)
        if cfg.graft_prune_period is not None:
            self.loop.schedule_every(cfg.graft_prune_period, host.graft_prune_daemon.tick)

    def enable_resolvers(self, registry=None) -> None:
        """Turn on automatic conflict resolution cluster-wide.

        Every host gets the *same* registry — resolver determinism assumes
        the two ends of a conflict select identical merge functions.
        """
        if registry is None:
            from repro.resolvers import default_registry

            registry = default_registry()
        self.resolvers = registry
        for host in self.hosts.values():
            if host.recon_daemon is not None:
                host.recon_daemon.resolvers = registry

    # -- dynamic replica placement -----------------------------------------------

    def add_root_replica(self, host_name: str) -> ReplicaLocation:
        """Place an additional replica of the root volume on ``host_name``.

        Paper Section 3.1: "A client may change the location and quantity
        of file replicas whenever a file replica is available."  The new
        replica starts empty and catches up through normal
        reconciliation; every host learns the new location.
        """
        host = self.hosts[host_name]
        next_id = max(loc.volrep.replica_id for loc in self.root_locations) + 1
        volrep = VolumeReplicaId(self.root_volume, next_id)
        host.physical.create_volume_replica(volrep)
        location = ReplicaLocation(volrep, host_name)
        self.root_locations = sorted(
            [*self.root_locations, location], key=lambda loc: loc.volrep.replica_id
        )
        for other in self.hosts.values():
            other.graft_table.learn(self.root_volume, self.root_locations)
            other.logical.learn_locations(self.root_volume, self.root_locations)
            for loc in self.root_locations:
                if loc.host == other.name:
                    other.recon_daemon.set_peers(loc.volrep, self.root_locations)
        # seed the new replica by one reconciliation pass against a peer
        peers = [loc for loc in self.root_locations if loc.volrep != volrep]
        if peers:
            host.recon_daemon.reconcile_with(volrep, peers[0])
        return location

    def add_volume_replica(
        self, volume: VolumeId, locations: list[ReplicaLocation], host_name: str
    ) -> ReplicaLocation:
        """Place an additional replica of a non-root volume.

        The caller supplies the currently known locations (e.g. from the
        graft point); the new location must still be registered in each
        graft point naming the volume (``add_graft_location``).
        """
        host = self.hosts[host_name]
        next_id = max(loc.volrep.replica_id for loc in locations) + 1
        volrep = VolumeReplicaId(volume, next_id)
        host.physical.create_volume_replica(volrep)
        location = ReplicaLocation(volrep, host_name)
        updated = sorted([*locations, location], key=lambda loc: loc.volrep.replica_id)
        for other in self.hosts.values():
            other.logical.learn_locations(volume, updated)
            for loc in updated:
                if loc.host == other.name:
                    other.recon_daemon.set_peers(loc.volrep, updated)
        peers = [loc for loc in updated if loc.volrep != volrep]
        if peers:
            host.recon_daemon.reconcile_with(volrep, peers[0])
        return location

    # -- convenience -----------------------------------------------------------

    def host(self, name: str) -> FicusHost:
        return self.hosts[name]

    def run_for(self, seconds: float) -> int:
        """Advance virtual time, firing daemons as they come due."""
        return self.loop.run_for(seconds)

    def partition(self, groups: list[set[str]]) -> None:
        self.network.partition(groups)

    def heal(self) -> None:
        self.network.heal()

    def reconcile_everything(self, rounds: int | None = None) -> None:
        """Force reconciliation to convergence (for tests and examples).

        Runs topology rounds: each round gives every host's daemon enough
        ticks for one sweep of its strategy — under the default full mesh
        that is one tick per peer (the historical O(hosts x peers)
        behavior, byte-identical), under ring/gossip a single tick whose
        fanout the strategy chooses.  The default round count is the
        topology's convergence bound: O(n) full-mesh/ring, O(log n)
        gossip.
        """
        topology = self.topology
        if rounds is None:
            rounds = topology.default_rounds(len(self.hosts))
        for _ in range(rounds):
            for host in self.hosts.values():
                peer_count = host.recon_daemon.max_peer_count()
                if not peer_count:
                    # a peerless daemon's tick is a guaranteed no-op; in a
                    # large cluster of single-replica hosts this keeps each
                    # convergence round O(1) per idle host
                    continue
                for _ in range(topology.sweep_ticks(peer_count)):
                    host.recon_daemon.tick()

    def total_conflicts(self) -> int:
        return sum(len(h.conflict_log.unresolved()) for h in self.hosts.values())

    def provenance_dag(self):
        """The cluster-wide version DAG composed from every host's ledger."""
        from repro.telemetry import compose_system_dag

        return compose_system_dag(self)
