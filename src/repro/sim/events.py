"""Discrete-event loop driving daemons against the virtual clock."""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import InvalidArgument
from repro.util import VirtualClock


@dataclass(order=True)
class _Event:
    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """A minimal deterministic discrete-event scheduler.

    Events fire in (time, insertion) order; the shared
    :class:`~repro.util.VirtualClock` is advanced to each event's time, so
    everything in the system (RPC latency, cache TTLs, daemon periods)
    agrees on what time it is.
    """

    def __init__(self, clock: VirtualClock):
        self.clock = clock
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self.events_run = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> _Event:
        """Run ``action`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise InvalidArgument(f"negative delay {delay}")
        event = _Event(self.clock.now() + delay, next(self._seq), action)
        heapq.heappush(self._heap, event)
        return event

    def schedule_every(self, period: float, action: Callable[[], None], jitter_offset: float = 0.0) -> Callable[[], None]:
        """Run ``action`` every ``period`` seconds until cancelled.

        Returns a cancel function.
        """
        if period <= 0:
            raise InvalidArgument(f"period must be positive, got {period}")
        state = {"stop": False}

        def fire() -> None:
            if state["stop"]:
                return
            action()
            if not state["stop"]:
                self.schedule(period, fire)

        self.schedule(jitter_offset if jitter_offset > 0 else period, fire)

        def cancel() -> None:
            state["stop"] = True

        return cancel

    def run_until(self, when: float) -> int:
        """Fire every event scheduled up to virtual time ``when``."""
        fired = 0
        while self._heap and self._heap[0].when <= when:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            event.action()
            fired += 1
            self.events_run += 1
        self.clock.advance_to(when)
        return fired

    def run_for(self, duration: float) -> int:
        """Advance the simulation by ``duration`` virtual seconds."""
        return self.run_until(self.clock.now() + duration)

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
