"""Simulation harness: event loop, daemons, and whole-cluster builder."""

from repro.sim.cluster import DaemonConfig, FicusHost, FicusSystem, HostConfig
from repro.sim.daemons import (
    GraftPruneDaemon,
    PropagationDaemon,
    PropagationStats,
    ReconciliationDaemon,
    ReconStats,
)
from repro.sim.events import EventLoop
from repro.sim.topology import (
    TOPOLOGIES,
    FullMeshTopology,
    GossipTopology,
    RingTopology,
    Topology,
    make_topology,
)

__all__ = [
    "DaemonConfig",
    "EventLoop",
    "FicusHost",
    "FicusSystem",
    "FullMeshTopology",
    "GossipTopology",
    "GraftPruneDaemon",
    "HostConfig",
    "PropagationDaemon",
    "PropagationStats",
    "ReconStats",
    "ReconciliationDaemon",
    "RingTopology",
    "TOPOLOGIES",
    "Topology",
    "make_topology",
]
