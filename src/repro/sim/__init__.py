"""Simulation harness: event loop, daemons, and whole-cluster builder."""

from repro.sim.cluster import DaemonConfig, FicusHost, FicusSystem, HostConfig
from repro.sim.daemons import (
    GraftPruneDaemon,
    PropagationDaemon,
    PropagationStats,
    ReconciliationDaemon,
    ReconStats,
)
from repro.sim.events import EventLoop

__all__ = [
    "DaemonConfig",
    "EventLoop",
    "FicusHost",
    "FicusSystem",
    "GraftPruneDaemon",
    "HostConfig",
    "PropagationDaemon",
    "PropagationStats",
    "ReconStats",
    "ReconciliationDaemon",
]
