"""Peer-selection topologies: full-mesh, ring, and gossip anti-entropy.

The paper's reconciliation daemon "periodically reconciles each hosted
volume replica against one remote peer, rotating around the replica
ring" (Section 3.3).  That pairwise primitive is exactly what epidemic
anti-entropy scales: *which* peer(s) a host talks to each round is a
policy separate from *how* a pairwise round works.  This module is that
policy layer — a :class:`Topology` answers "which of my peers do I
consider this tick?" for both background daemons:

* :class:`FullMeshTopology` — every peer is considered every tick and
  the daemon picks one by rotating its ring cursor.  This is the
  historical behavior, byte-identical, and remains the default; at n
  hosts a convergence sweep costs O(n) pairwise rounds per host.
* :class:`RingTopology` — one peer per tick, starting from this host's
  successor in the sorted host ring and rotating from there.  Constant
  per-round load; information crosses the ring in O(n) rounds.
* :class:`GossipTopology` — a deterministic per-``(seed, host, tick)``
  sample of ``O(log n)`` peers per tick.  Rumor-style doubling converges
  a divergent replica set in O(log n) rounds at O(log n) per-host load
  per round — the combination that makes 500-host clusters simulable
  (and, in the real world, deployable).

Every selection is a pure function of ``(seed, host, tick)`` — no
process-salted hashes, no shared RNG state — so a seeded chaos run or
benchmark replays its whole peer schedule byte-identically.
"""

from __future__ import annotations

import math
import random
import zlib
from collections.abc import Sequence

__all__ = [
    "FullMeshTopology",
    "GossipTopology",
    "RingTopology",
    "TOPOLOGIES",
    "Topology",
    "make_topology",
]


def _stable_rng(seed: int, host: str, tick: int) -> random.Random:
    """A PRNG keyed only by ``(seed, host, tick)``.

    ``hash(str)`` is salted per process, which would make every run draw
    a different gossip schedule; CRC32 of the formatted key is stable
    across processes and platforms, which is what lets a chaos seed
    replay its peer schedule exactly.
    """
    return random.Random(zlib.crc32(f"{seed}|{host}|{tick}".encode()))


def log_fanout(peer_count: int) -> int:
    """The O(log n) gossip fanout for ``peer_count`` candidate peers."""
    if peer_count <= 0:
        return 0
    return min(peer_count, max(1, math.ceil(math.log2(peer_count + 1))))


class Topology:
    """Which peers a daemon considers on a given tick.

    ``select`` returns *indices* into the caller's peer list, in the
    order the daemon should try them.  ``reconcile_selected`` says what
    the reconciliation daemon does with the selection: reconcile every
    usable selected peer (ring/gossip — the selection *is* the round's
    fanout) or only the first usable one (full mesh, where the selection
    is "everyone" and the daemon's rotating cursor provides fairness).
    """

    name = "abstract"
    #: full-mesh keeps the legacy one-peer-per-tick cursor scan
    is_full_mesh = False
    #: reconcile every usable selected peer, not just the first
    reconcile_selected = True

    def __init__(self, seed: int = 0):
        self.seed = seed

    def fanout(self, peer_count: int) -> int:
        """How many peers one tick considers out of ``peer_count``."""
        raise NotImplementedError

    def select(self, host: str, peer_hosts: Sequence[str], tick: int) -> list[int]:
        """Indices into ``peer_hosts`` to consider on ``tick``, in order."""
        raise NotImplementedError

    def sweep_ticks(self, peer_count: int) -> int:
        """Daemon ticks per host that make up one convergence round."""
        return 1

    def default_rounds(self, host_count: int) -> int:
        """Convergence-sweep rounds that suffice for ``host_count`` hosts."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


class FullMeshTopology(Topology):
    """Every peer every tick; the daemon's ring cursor picks one.

    The historical (and default) behavior: O(n) candidate scans per tick
    and, via :meth:`sweep_ticks`, O(n) pairwise rounds per host per
    convergence sweep.  Cheap at paper scale, quadratic at cluster scale.
    """

    name = "full_mesh"
    is_full_mesh = True
    reconcile_selected = False

    def fanout(self, peer_count: int) -> int:
        return peer_count

    def select(self, host: str, peer_hosts: Sequence[str], tick: int) -> list[int]:
        return list(range(len(peer_hosts)))

    def sweep_ticks(self, peer_count: int) -> int:
        return peer_count

    def default_rounds(self, host_count: int) -> int:
        return max(2, host_count)


class RingTopology(Topology):
    """One peer per tick, rotating from this host's ring successor.

    Deterministic and coordination-free: every host sorts the peer set
    the same way, starts at its own successor, and advances one position
    per tick, so a quiescent ring carries an update all the way around
    in at most n rounds at constant per-host load.
    """

    name = "ring"

    def fanout(self, peer_count: int) -> int:
        return 1 if peer_count else 0

    def select(self, host: str, peer_hosts: Sequence[str], tick: int) -> list[int]:
        n = len(peer_hosts)
        if not n:
            return []
        ordered = sorted(range(n), key=lambda i: peer_hosts[i])
        successor = next(
            (pos for pos, i in enumerate(ordered) if peer_hosts[i] > host), 0
        )
        return [ordered[(successor + tick) % n]]

    def default_rounds(self, host_count: int) -> int:
        # information moves one ring hop per round; double for the pulls
        # the first lap itself reveals
        return max(2, 2 * host_count)


class GossipTopology(Topology):
    """O(log n) peers per tick, sampled deterministically per host/tick.

    Epidemic anti-entropy: each tick a host syncs a small random subset
    of its peers, and hosts that have already pulled an update become
    sources for the next tick, so coverage doubles per round.  The
    sample is drawn from a PRNG keyed by ``(seed, host, tick)`` — same
    seed, same schedule, every process.
    """

    name = "gossip"

    def fanout(self, peer_count: int) -> int:
        return log_fanout(peer_count)

    def select(self, host: str, peer_hosts: Sequence[str], tick: int) -> list[int]:
        n = len(peer_hosts)
        k = self.fanout(n)
        if not k:
            return []
        return _stable_rng(self.seed, host, tick).sample(range(n), k)

    def default_rounds(self, host_count: int) -> int:
        # c * log2(n) with headroom for unlucky samples at tiny n
        return max(4, 3 * math.ceil(math.log2(host_count + 1)))


TOPOLOGIES: dict[str, type[Topology]] = {
    FullMeshTopology.name: FullMeshTopology,
    RingTopology.name: RingTopology,
    GossipTopology.name: GossipTopology,
}


def make_topology(spec: "str | Topology | None", seed: int = 0) -> Topology:
    """Coerce a strategy name (or ``None``/instance) into a topology."""
    if spec is None:
        return FullMeshTopology(seed)
    if isinstance(spec, Topology):
        return spec
    try:
        cls = TOPOLOGIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown topology {spec!r} (choose from {sorted(TOPOLOGIES)})"
        ) from None
    return cls(seed)
