"""The per-host background daemons.

* :class:`PropagationDaemon` — drains the new-version cache, pulling fresh
  versions from the notifying replica.  "Each physical layer reacts to the
  update notification as it sees fit: it may propagate the new version
  immediately, or wait for some later, more convenient time" (Section
  2.5); the ``min_age`` knob is that policy, and is what experiment E6
  sweeps ("rapid propagation enhances availability...; delayed propagation
  may reduce the overall propagation cost when updates are bursty").

* :class:`ReconciliationDaemon` — periodically reconciles each hosted
  volume replica against one remote peer, rotating around the replica
  ring, "concurrently with respect to normal file activity" (Section 3.3).

* :class:`GraftPruneDaemon` — "a graft that is no longer needed is quietly
  pruned at a later time" (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType

from repro.errors import FicusError, HostUnreachable
from repro.logical import Fabric, FicusLogicalLayer
from repro.physical import FicusPhysicalLayer, NewVersionNote
from repro.physical.wire import op_dir
from repro.recon import (
    ConflictLog,
    PullOutcome,
    SubtreeReconResult,
    push_notify_pull,
    reconcile_subtree,
)
from repro.sim.topology import FullMeshTopology, Topology
from repro.util import VolumeReplicaId
from repro.volume import ReplicaLocation


class PeerHealth:
    """Consecutive-failure tracking for flapping peers.

    A peer that keeps failing *while reachable* (transient RPC faults, a
    lossy link) is marked degraded: the next ``min(2^(failures-1),
    max_skips)`` considerations of that peer are skipped, so a periodic
    round routes around it instead of stalling on retries every tick.
    Partitioned or crashed peers are NOT penalized — unreachability is
    detected for free and is the normal state reconciliation exists for.
    The skip budget is tick-based, not wall-clock-based, so a quiescent
    system converges after a bounded number of rounds regardless of how
    virtual time advances.
    """

    def __init__(self, max_skips: int = 4):
        self.max_skips = max_skips
        self._failures: dict[str, int] = {}
        self._skips_left: dict[str, int] = {}

    def record_failure(self, host: str) -> None:
        failures = self._failures.get(host, 0) + 1
        self._failures[host] = failures
        self._skips_left[host] = min(self.max_skips, 2 ** (failures - 1))

    def record_success(self, host: str) -> None:
        self._failures.pop(host, None)
        self._skips_left.pop(host, None)

    def should_skip(self, host: str) -> bool:
        """Consume one skip credit for ``host`` if any remain."""
        left = self._skips_left.get(host, 0)
        if left <= 0:
            return False
        self._skips_left[host] = left - 1
        return True

    def is_degraded(self, host: str) -> bool:
        return self._skips_left.get(host, 0) > 0

    def degraded_hosts(self) -> list[str]:
        return [host for host, left in self._skips_left.items() if left > 0]

    def reset(self) -> None:
        """Forget all history (e.g. after faults are known to have ceased)."""
        self._failures.clear()
        self._skips_left.clear()


@dataclass
class PropagationStats:
    pulls_attempted: int = 0
    pulls_succeeded: int = 0
    already_current: int = 0
    conflicts_deferred: int = 0
    unreachable: int = 0
    bytes_copied: int = 0
    #: bytes block-delta pulls avoided copying (file size minus delta)
    bytes_saved: int = 0
    #: notes left pending this tick because their source is degraded
    notes_deferred: int = 0
    #: notes left pending because their source was outside the topology's
    #: fanout this tick (ring/gossip only; full mesh never gates)
    notes_gated: int = 0
    #: notes dropped because the named entry died before servicing
    stale_notes: int = 0


class PropagationDaemon:
    """Pulls new versions named by the new-version cache.

    ``logical`` (optional) lets the daemon route each installed version
    back through the update-notification path, so peers' attribute caches
    invalidate immediately instead of waiting out their TTL.  Those
    notifications are marked ``origin="sync"``: receivers must not mint
    new-version notes from them, or two pullers would notify each other
    in a loop.
    """

    def __init__(
        self,
        physical: FicusPhysicalLayer,
        fabric: Fabric,
        min_age: float = 0.0,
        logical: FicusLogicalLayer | None = None,
        topology: Topology | None = None,
    ):
        self.physical = physical
        self.fabric = fabric
        self.min_age = min_age
        self.logical = logical
        self.topology = topology if topology is not None else FullMeshTopology()
        self.stats = PropagationStats()
        self.peer_health = PeerHealth()
        self._tick_index = 0

    def reboot(self) -> None:
        """Forget all volatile state (crash recovery).

        Skip credits and the topology tick schedule are in-memory policy
        state; a rebooted host must not route around peers based on
        pre-crash failure history.
        """
        self.peer_health = PeerHealth()
        self._tick_index = 0

    def _notify_installed(self, volrep, parent_fh, fh, objkind: str) -> None:
        """Announce a version this daemon just installed (origin="sync")."""
        if self.logical is None:
            return
        acting = ReplicaLocation(volrep=volrep, host=self.physical.host_addr)
        self.logical.notify_update(
            volrep.volume, acting, parent_fh, fh, objkind=objkind, origin="sync"
        )

    def tick(self) -> int:
        """Service every sufficiently old new-version note; returns pulls.

        Notes from a degraded source (one that kept failing while
        reachable) stay pending for a few ticks instead of burning a full
        retry cycle each round; reconciliation covers the gap regardless.
        Under a ring/gossip topology only notes whose source falls inside
        this tick's fanout are serviced — the rest stay pending for a
        tick where their source is selected, bounding the number of
        distinct peers one round contacts.
        """
        physical = self.physical
        if not physical.new_version_cache_size:
            # idle fast path: an empty cache means no note can be aged,
            # skipped, or serviced — one length check and out (this is
            # the common case for every quiescent host in a large sim)
            health = physical.health
            if health is not None:
                health.set_notes_pending(0)
            return 0
        now = physical.clock.now()
        pulled = 0
        notes = physical.pending_new_versions()
        allowed: set[str] | None = None
        if not self.topology.is_full_mesh:
            sources = sorted({note.src_addr for note in notes})
            selected = self.topology.select(
                physical.host_addr, sources, self._tick_index
            )
            allowed = {sources[i] for i in selected}
        self._tick_index += 1
        for note in notes:
            if now - note.noted_at < self.min_age:
                continue
            if allowed is not None and note.src_addr not in allowed:
                self.stats.notes_gated += 1
                self.physical.telemetry.metrics.counter("propagation.notes_gated").inc()
                continue
            if self.peer_health.should_skip(note.src_addr):
                self.stats.notes_deferred += 1
                self.physical.telemetry.metrics.counter("propagation.notes_deferred").inc()
                continue
            pulled += self._service(note)
        health = self.physical.health
        if health is not None:
            health.set_notes_pending(self.physical.new_version_cache_size)
        return pulled

    def _service(self, note: NewVersionNote) -> int:
        self.stats.pulls_attempted += 1
        telemetry = self.physical.telemetry
        bytes_before = self.stats.bytes_copied
        saved_before = self.stats.bytes_saved
        # the span is parented on the trace context the update notification
        # carried, so this asynchronous pull joins the originating trace tree
        with telemetry.tracer.span(
            "propagation.pull",
            layer="daemon",
            host=self.physical.host_addr,
            parent=note.trace_ctx,
        ) as span:
            span.set_tag("objkind", note.objkind)
            span.set_tag("src", note.src_addr)
            outcome, pulled = self._attempt(note)
            span.set_tag("outcome", outcome)
        if outcome == "unreachable":
            # failing while the network says the peer is fine = flapping;
            # a genuine partition/crash is normal and carries no penalty
            if self.fabric.network.reachable(self.physical.host_addr, note.src_addr):
                self.peer_health.record_failure(note.src_addr)
        elif outcome in ("pulled", "up_to_date"):
            self.peer_health.record_success(note.src_addr)
        telemetry.metrics.counter("propagation.pulls_attempted").inc()
        telemetry.metrics.counter(f"propagation.{outcome}").inc()
        copied = self.stats.bytes_copied - bytes_before
        if copied:
            telemetry.metrics.counter("propagation.bytes_copied").inc(copied)
        saved = self.stats.bytes_saved - saved_before
        if saved:
            telemetry.metrics.counter("propagation.bytes_saved").inc(saved)
        telemetry.events.emit(
            "propagation.pull",
            host=self.physical.host_addr,
            outcome=outcome,
            objkind=note.objkind,
            src=note.src_addr,
        )
        return pulled

    def _attempt(self, note: NewVersionNote) -> tuple[str, int]:
        try:
            remote_root = self.fabric.volume_root(note.src_addr, note.src_volrep)
            remote_dir = remote_root.lookup(op_dir(note.key.parent_fh))
            if note.objkind == "dir":
                return self._service_directory(note, remote_dir)
            result = push_notify_pull(self.physical, note, remote_dir)
        except HostUnreachable:
            self.stats.unreachable += 1
            return ("unreachable", 0)
        except FicusError:
            self.stats.unreachable += 1
            return ("unreachable", 0)
        if result.outcome is PullOutcome.PULLED:
            self.stats.pulls_succeeded += 1
            self.stats.bytes_copied += result.bytes_copied
            self.stats.bytes_saved += result.bytes_saved
            self._notify_installed(
                note.key.volrep, note.key.parent_fh, note.key.fh, objkind="file"
            )
            return ("pulled", 1)
        if result.outcome is PullOutcome.UP_TO_DATE:
            self.stats.already_current += 1
            return ("up_to_date", 0)
        if result.outcome is PullOutcome.CONFLICT:
            # leave it to the reconciliation protocol to report
            self.stats.conflicts_deferred += 1
            self.physical.clear_new_version(note.key)
            return ("conflict_deferred", 0)
        if result.outcome is PullOutcome.LOCAL_DEAD:
            # the file was unlinked here while the note sat queued; the
            # note is moot (neither a peer failure nor a success)
            self.stats.stale_notes += 1
            self.physical.clear_new_version(note.key)
            return ("stale_note", 0)
        self.stats.unreachable += 1
        return ("unreachable", 0)

    def _service_directory(self, note: NewVersionNote, remote_dir) -> tuple[str, int]:
        """Directory updates are 'replayed', not copied: run the directory
        reconciliation algorithm against the notifying replica, then pull
        any files whose new versions the merge revealed."""
        from repro.recon import reconcile_directory
        from repro.recon.propagate import pull_file

        store = self.physical.store_for(note.key.volrep)
        dir_fh = note.key.parent_fh
        if not store.has_directory(dir_fh):
            # parent itself unknown yet: wait for subtree reconciliation
            return ("deferred", 0)
        result = reconcile_directory(self.physical, store, dir_fh, remote_dir)
        if result.unreachable:
            self.stats.unreachable += 1
            return ("unreachable", 0)
        pulled = 0
        policy = self.physical.policy_for(note.key.volrep)
        for file_entry in result.child_files:
            file_fh = file_entry.fh
            if not store.has_file(dir_fh, file_fh) and not policy.wants(file_entry):
                continue  # selective replication: entry-only here
            pull = pull_file(
                store,
                dir_fh,
                file_fh,
                remote_dir,
                health=self.physical.health,
                origin=note.src_addr,
            )
            if pull.outcome is PullOutcome.PULLED:
                pulled += 1
                self.stats.bytes_copied += pull.bytes_copied
                self.stats.bytes_saved += pull.bytes_saved
        self.physical.clear_new_version(note.key)
        self.stats.pulls_succeeded += 1 if (pulled or result.changed) else 0
        if not pulled and not result.changed:
            self.stats.already_current += 1
            return ("up_to_date", 0)
        self._notify_installed(note.key.volrep, dir_fh, dir_fh, objkind="dir")
        return ("pulled", pulled)


@dataclass
class ReconStats:
    runs: int = 0
    #: ring peers passed over this-and-previous ticks because they kept
    #: failing while reachable (degraded), letting the round do useful
    #: work against someone else instead of stalling
    peers_skipped: int = 0
    results: list[SubtreeReconResult] = field(default_factory=list)

    @property
    def total_conflicts(self) -> int:
        return sum(r.file_conflicts for r in self.results)

    @property
    def total_pulled(self) -> int:
        return sum(r.files_pulled for r in self.results)

    @property
    def total_auto_resolved(self) -> int:
        return sum(r.conflicts_auto_resolved for r in self.results)


class ReconciliationDaemon:
    """Periodic subtree reconciliation against rotating remote peers."""

    def __init__(
        self,
        physical: FicusPhysicalLayer,
        fabric: Fabric,
        conflict_log: ConflictLog,
        peers: dict[VolumeReplicaId, list[ReplicaLocation]],
        logical: FicusLogicalLayer | None = None,
        resolvers=None,
        topology: Topology | None = None,
    ):
        self.physical = physical
        self.fabric = fabric
        self.conflict_log = conflict_log
        #: per hosted volume replica: the other replicas of the volume,
        #: stored as tuples behind a read-only view — all mutation goes
        #: through :meth:`set_peers`, which keeps the host-name memo
        #: coherent (a same-length in-place swap used to defeat the old
        #: length-based staleness heuristic and serve stale hosts to the
        #: health plane)
        self._peers: dict[VolumeReplicaId, tuple[ReplicaLocation, ...]] = {}
        #: peer host names per replica, precomputed so the per-tick health
        #: aging pass does not rebuild the same list every round
        self._peer_hosts: dict[VolumeReplicaId, list[str]] = {}
        for volrep, locations in peers.items():
            self._peers[volrep] = tuple(locations)
            self._peer_hosts[volrep] = [loc.host for loc in locations]
        self.logical = logical
        #: optional ResolverRegistry enabling automatic conflict resolution
        self.resolvers = resolvers
        self.topology = topology if topology is not None else FullMeshTopology()
        self._ring_position: dict[VolumeReplicaId, int] = {}
        self._tick_index = 0
        self.stats = ReconStats()
        self.peer_health = PeerHealth()
        self.tombstones_purged = 0

    @property
    def peers(self) -> MappingProxyType:
        """Read-only view of the per-replica peer sets.

        Mutate via :meth:`set_peers` only; direct assignment or in-place
        edits would desynchronize the precomputed host-name memo.
        """
        return MappingProxyType(self._peers)

    def set_peers(self, volrep: VolumeReplicaId, locations: list[ReplicaLocation]) -> None:
        peers = tuple(loc for loc in locations if loc.volrep != volrep)
        self._peers[volrep] = peers
        self._peer_hosts[volrep] = [loc.host for loc in peers]

    def max_peer_count(self) -> int:
        """The widest peer set across hosted replicas (0 when peerless)."""
        return max((len(p) for p in self._peers.values()), default=0)

    def reboot(self) -> None:
        """Forget all volatile state (crash recovery).

        Skip credits, ring cursors, and the topology tick schedule are
        in-memory policy state the docstring of ``FicusHost.restart``
        declares lost; carrying them across a reboot would let a host
        route around peers based on pre-crash history.
        """
        self.peer_health = PeerHealth()
        self._ring_position.clear()
        self._tick_index = 0

    def tick(self) -> list[SubtreeReconResult]:
        """Reconcile each hosted replica against its topology-chosen peers.

        Under the default full mesh every peer is a candidate and the
        rotating ring cursor picks one, exactly the historical behavior.
        Under ring/gossip the topology names this tick's fanout — one
        successor, or an O(log n) deterministic sample — and the daemon
        reconciles with every usable peer in it.  Degraded peers (failing
        while reachable) are passed over for a few ticks so the round
        does useful work against someone else instead of stalling on
        retry cycles; unreachable peers cost one cheap check and surface
        as an aborted result routed through the health plane.
        """
        telemetry = self.physical.telemetry
        outcomes = []
        health = self.physical.health
        topology = self.topology
        tick_index = self._tick_index
        self._tick_index += 1
        for volrep in list(self.physical.stores):
            peers = self._peers.get(volrep)
            if not peers:
                continue
            hosts = self._peer_hosts[volrep]
            if health is not None:
                # every ring peer ages one tick; a completed round resets it
                health.recon_tick(volrep.volume, hosts)
            if topology.is_full_mesh:
                position = self._ring_position.get(volrep, 0)
                order = [(position + offset) % len(peers) for offset in range(len(peers))]
            else:
                position = 0
                order = topology.select(self.physical.host_addr, hosts, tick_index)
                if order:
                    telemetry.metrics.counter("recon.peers_selected").inc(len(order))
            reconciled = False
            saw_unreachable = False
            unreachable_hosts: list[str] = []
            for scanned, index in enumerate(order):
                peer = peers[index]
                if not self.fabric.network.reachable(self.physical.host_addr, peer.host):
                    saw_unreachable = True
                    unreachable_hosts.append(peer.host)
                    continue
                if self.peer_health.should_skip(peer.host):
                    self.stats.peers_skipped += 1
                    telemetry.metrics.counter("recon.peers_skipped").inc()
                    continue
                if topology.is_full_mesh:
                    self._ring_position[volrep] = position + scanned + 1
                result = self.reconcile_with(volrep, peer)
                if result.aborted_by_partition:
                    # it was reachable when chosen, so the failure was a
                    # transient fault, not a partition: degrade the peer
                    self.peer_health.record_failure(peer.host)
                else:
                    self.peer_health.record_success(peer.host)
                outcomes.append(result)
                reconciled = True
                if not topology.reconcile_selected:
                    break
            if not reconciled:
                if topology.is_full_mesh:
                    self._ring_position[volrep] = position + 1
                if saw_unreachable:
                    # same observable outcome a doomed run would have had,
                    # without paying for its RPC attempts — including the
                    # health accounting: an unreachable ring must raise
                    # divergence suspicion exactly like an aborted run
                    result = SubtreeReconResult(aborted_by_partition=True)
                    self.stats.runs += 1
                    self.stats.results.append(result)
                    telemetry.metrics.counter("recon.runs").inc()
                    telemetry.metrics.counter("recon.aborted_by_partition").inc()
                    if health is not None:
                        for peer_host in unreachable_hosts:
                            health.recon_result(volrep.volume, peer_host, ok=False)
                    outcomes.append(result)
        return outcomes

    def volume_replica_ids(self, volrep: VolumeReplicaId) -> frozenset[int]:
        """The full replica-id set of a volume (self + known peers)."""
        ids = {volrep.replica_id}
        for peer in self._peers.get(volrep, ()):
            ids.add(peer.volrep.replica_id)
        return frozenset(ids)

    def reconcile_with(
        self, volrep: VolumeReplicaId, peer: ReplicaLocation
    ) -> SubtreeReconResult:
        telemetry = self.physical.telemetry
        with telemetry.tracer.span(
            "recon.run", layer="daemon", host=self.physical.host_addr
        ) as span:
            span.set_tag("peer", peer.host)
            result = self._reconcile_with(volrep, peer, span)
        telemetry.metrics.counter("recon.runs").inc()
        health = self.physical.health
        if health is not None:
            health.recon_result(
                volrep.volume,
                peer.host,
                ok=not result.aborted_by_partition,
                conflicts=result.file_conflicts,
            )
        if result.aborted_by_partition:
            telemetry.metrics.counter("recon.aborted_by_partition").inc()
        if result.files_pulled:
            telemetry.metrics.counter("recon.files_pulled").inc(result.files_pulled)
        if result.file_conflicts:
            telemetry.metrics.counter("recon.file_conflicts").inc(result.file_conflicts)
        if result.conflicts_auto_resolved:
            telemetry.metrics.counter("recon.conflicts_auto_resolved").inc(
                result.conflicts_auto_resolved
            )
        if result.resolver_fallbacks:
            telemetry.metrics.counter("recon.resolver_fallbacks").inc(result.resolver_fallbacks)
        if result.subtrees_pruned:
            telemetry.metrics.counter("recon.subtrees_pruned").inc(result.subtrees_pruned)
        if result.probe_rpcs:
            telemetry.metrics.counter("recon.probe_rpcs").inc(result.probe_rpcs)
        if result.bytes_saved:
            telemetry.metrics.counter("propagation.bytes_saved").inc(result.bytes_saved)
        return result

    def _reconcile_with(
        self, volrep: VolumeReplicaId, peer: ReplicaLocation, span
    ) -> SubtreeReconResult:
        try:
            remote_root = self.fabric.volume_root(peer.host, peer.volrep)
        except FicusError:
            result = SubtreeReconResult(aborted_by_partition=True)
            self.stats.runs += 1
            self.stats.results.append(result)
            span.set_tag("aborted", True)
            return result
        all_replicas = self.volume_replica_ids(volrep)
        on_changed = None
        if self.logical is not None:
            acting = ReplicaLocation(volrep=volrep, host=self.physical.host_addr)

            def on_changed(dir_fh, _acting=acting):
                # route the install through the update-notification path so
                # peers' attribute caches invalidate now, not at TTL expiry;
                # origin="sync" keeps receivers from minting pull notes that
                # would bounce between the two pullers forever
                self.logical.notify_update(
                    _acting.volrep.volume,
                    _acting,
                    dir_fh,
                    dir_fh,
                    objkind="dir",
                    origin="sync",
                )

        result = reconcile_subtree(
            self.physical,
            volrep,
            remote_root,
            peer.host,
            conflict_log=self.conflict_log,
            all_replicas=all_replicas,
            policy=self.physical.policy_for(volrep),
            on_directory_changed=on_changed,
            resolvers=self.resolvers,
        )
        # tombstone garbage collection: purge fully-acknowledged deletes
        from repro.recon.gc import collect_volume_replica

        gc = collect_volume_replica(
            self.physical, self.physical.store_for(volrep), all_replicas
        )
        self.tombstones_purged += gc.tombstones_purged + result.tombstones_purged_by_inference
        self.stats.runs += 1
        self.stats.results.append(result)
        span.set_tag("files_pulled", result.files_pulled)
        return result


class GraftPruneDaemon:
    """Quietly drops grafts idle longer than ``idle_timeout``."""

    def __init__(self, logical: FicusLogicalLayer, idle_timeout: float = 300.0):
        self.logical = logical
        self.idle_timeout = idle_timeout
        self.pruned_total = 0

    def tick(self) -> int:
        if not self.logical.grafter.active_grafts:
            return 0  # idle fast path: nothing mounted, nothing to age
        pruned = self.logical.grafter.prune(self.idle_timeout)
        self.pruned_total += pruned
        return pruned
