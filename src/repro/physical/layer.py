"""The Ficus physical layer.

One instance runs per host.  It stacks on a lower vnode layer (normally
UFS), manages the volume replicas stored on that host, tracks open/close
update sessions, advances version vectors on updates, and keeps the
*new-version cache* fed by update-notification datagrams:

"A physical layer that receives an update notification makes an entry for
the file in a new version cache.  An update propagation daemon consults
this cache to see what new replica versions should be propagated in, and
performs the propagation when it deems it appropriate" (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FileNotFound, InvalidArgument, StaleFileHandle
from repro.net import Network
from repro.physical.policy import StoragePolicy
from repro.physical.store import ReplicaStore
from repro.physical.vnodes import (
    PhysicalDirVnode,
    PhysicalFileVnode,
    PhysicalRootVnode,
)
from repro.physical.wire import EntryType
from repro.telemetry import NULL_TELEMETRY, Telemetry, TraceContext
from repro.util import FicusFileHandle, VirtualClock, VolumeReplicaId
from repro.vnode.interface import FileSystemLayer, Vnode


@dataclass(frozen=True)
class NewVersionKey:
    """Identifies one file replica needing propagation."""

    volrep: VolumeReplicaId
    parent_fh: FicusFileHandle
    fh: FicusFileHandle


@dataclass
class NewVersionNote:
    """One new-version cache entry."""

    key: NewVersionKey
    src_addr: str
    src_volrep: VolumeReplicaId
    noted_at: float
    #: "file" (pull contents) or "dir" (replay entry ops via recon)
    objkind: str = "file"
    #: trace context of the update that sent the notification, so the
    #: daemon's eventual pull span joins the originating trace tree
    trace_ctx: TraceContext | None = None


@dataclass
class _Session:
    """Open/close update session state for one file replica."""

    opens: int = 0
    dirty: bool = False


def notification_payload(
    volrep: VolumeReplicaId,
    parent_fh: FicusFileHandle,
    fh: FicusFileHandle,
    src_addr: str,
    objkind: str = "file",
    trace: dict[str, str] | None = None,
    origin: str = "update",
) -> dict[str, object]:
    """Wire form of an update-notification datagram.

    ``objkind`` distinguishes file-content updates (propagated by atomic
    copy) from directory updates (propagated by replaying entry operations
    through directory reconciliation — "simply copying directory contents
    is incorrect", Section 3.2).

    ``trace`` optionally carries the sender's serialized trace context
    (:meth:`repro.telemetry.TraceContext.to_wire`) so the receiving host
    can parent its eventual propagation pull on the originating update.

    ``origin="sync"`` marks a notification sent because propagation or
    reconciliation *installed* a version that already exists elsewhere.
    Receivers still invalidate their attribute caches, but do not create
    a new-version note — otherwise two pullers would bounce install
    notifications back and forth forever.
    """
    payload: dict[str, object] = {
        "kind": "new-version",
        "volrep": volrep.to_hex(),
        "parent": parent_fh.logical.to_hex(),
        "fh": fh.logical.to_hex(),
        "src": src_addr,
        "objkind": objkind,
    }
    if trace is not None:
        payload["trace"] = trace
    if origin != "update":
        payload["origin"] = origin
    return payload


class FicusPhysicalLayer(FileSystemLayer):
    """Per-host physical layer managing this host's volume replicas."""

    layer_name = "ficus-physical"

    def __init__(
        self,
        lower: FileSystemLayer,
        host_addr: str,
        network: Network | None = None,
        clock: VirtualClock | None = None,
        telemetry: Telemetry | None = None,
    ):
        super().__init__()
        self.lower_layer = lower
        self.lower_root = lower.root()
        self.host_addr = host_addr
        self.network = network
        self.clock = clock or (network.clock if network is not None else VirtualClock())
        self.telemetry = telemetry or NULL_TELEMETRY
        self.stores: dict[VolumeReplicaId, ReplicaStore] = {}
        self._policies: dict[VolumeReplicaId, StoragePolicy] = {}
        self._sessions: dict[tuple[int, FicusFileHandle], _Session] = {}
        self._session_parents: dict[tuple[int, FicusFileHandle], FicusFileHandle] = {}
        self._new_versions: dict[NewVersionKey, NewVersionNote] = {}
        self._registry: dict[int, Vnode] = {}
        #: count of version-vector bumps deferred into sessions (observability)
        self.session_coalesced_updates = 0
        #: this host's HealthPlane, wired by the cluster (None when disabled)
        self.health = None
        if network is not None:
            network.register_datagram_handler(host_addr, self._on_datagram)

    # -- volume replica management ------------------------------------------

    def create_volume_replica(self, volrep: VolumeReplicaId) -> ReplicaStore:
        """Initialize storage for a new volume replica on this host."""
        if volrep in self.stores:
            raise InvalidArgument(f"{volrep} already hosted on {self.host_addr}")
        store = ReplicaStore.create(self.lower_root, volrep, metrics=self._metrics_or_none())
        self.stores[volrep] = store
        return store

    def attach_volume_replica(self, volrep: VolumeReplicaId) -> ReplicaStore:
        """Attach to existing storage (host restart)."""
        if volrep in self.stores:
            return self.stores[volrep]
        store = ReplicaStore.attach(self.lower_root, volrep, metrics=self._metrics_or_none())
        self.stores[volrep] = store
        return store

    def _metrics_or_none(self):
        """Stores take a registry only when it records; None keeps their
        counting helper a single branch on the disabled path."""
        return self.telemetry.metrics if self.telemetry.enabled else None

    def store_for(self, volrep: VolumeReplicaId) -> ReplicaStore:
        try:
            return self.stores[volrep]
        except KeyError:
            raise FileNotFound(f"{self.host_addr} hosts no volume replica {volrep}") from None

    def store_by_hex(self, text: str) -> ReplicaStore:
        return self.store_for(VolumeReplicaId.from_hex(text))

    def hosts_volume_replica(self, volrep: VolumeReplicaId) -> bool:
        return volrep in self.stores

    def set_storage_policy(self, volrep: VolumeReplicaId, policy: StoragePolicy) -> None:
        """Make this volume replica selective about file contents."""
        self.store_for(volrep)  # validate
        self._policies[volrep] = policy

    def policy_for(self, volrep: VolumeReplicaId) -> StoragePolicy:
        return self._policies.get(volrep) or _FULL_POLICY

    # -- vnode minting & NFS handle support -----------------------------------

    def root(self) -> PhysicalRootVnode:
        return PhysicalRootVnode(self)

    def dir_vnode(self, store: ReplicaStore, fh: FicusFileHandle) -> PhysicalDirVnode:
        return PhysicalDirVnode(self, store, fh)

    def file_vnode(
        self,
        store: ReplicaStore,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        etype: EntryType,
    ) -> PhysicalFileVnode:
        return PhysicalFileVnode(self, store, parent_fh, fh, etype)

    def register_vnode(self, fileid: int, vnode: Vnode) -> None:
        """Remember fileid -> vnode so NFS handles can be re-resolved."""
        self._registry[fileid] = vnode

    def vnode_for(self, fileid: int) -> Vnode:
        vnode = self._registry.get(fileid)
        if vnode is None:
            raise StaleFileHandle(f"physical layer has no vnode for fileid {fileid}")
        return vnode

    # -- update sessions (open/close locally, session_open/close over NFS) ------

    def _session_key(self, store: ReplicaStore, fh: FicusFileHandle) -> tuple[int, FicusFileHandle]:
        return (id(store), fh.logical)

    def session_open(
        self, store: ReplicaStore, parent_fh: FicusFileHandle, fh: FicusFileHandle
    ) -> None:
        key = self._session_key(store, fh)
        session = self._sessions.setdefault(key, _Session())
        session.opens += 1
        self._session_parents[key] = parent_fh.logical

    def session_close(
        self, store: ReplicaStore, parent_fh: FicusFileHandle, fh: FicusFileHandle
    ) -> bool:
        """Close one nesting level; True when this close ended a session
        that actually updated the replica (the caller should notify)."""
        key = self._session_key(store, fh)
        session = self._sessions.get(key)
        if session is None or session.opens == 0:
            return False
        session.opens -= 1
        if session.opens > 0:
            return False
        dirty = session.dirty
        if dirty:
            self._bump_file_vv(store, parent_fh, fh)
        del self._sessions[key]
        self._session_parents.pop(key, None)
        return dirty

    def has_open_session(self, store: ReplicaStore, fh: FicusFileHandle) -> bool:
        session = self._sessions.get(self._session_key(store, fh))
        return session is not None and session.opens > 0

    def note_update(
        self, store: ReplicaStore, parent_fh: FicusFileHandle, fh: FicusFileHandle
    ) -> None:
        """A write/truncate happened: advance the version vector.

        Inside an open/close session the bump is deferred to close so one
        whole update session counts as a single update — this is what
        forwarding the open/close information buys (paper Section 2.3:
        "Ficus is able to use effectively the open/close information that
        NFS intercepts and ignores"; our NFS forwards it as the explicit
        ``session_open``/``session_close`` operations).
        """
        key = self._session_key(store, fh)
        session = self._sessions.get(key)
        if session is not None and session.opens > 0:
            session.dirty = True
            self.session_coalesced_updates += 1
            return
        self._bump_file_vv(store, parent_fh, fh)

    def _bump_file_vv(
        self, store: ReplicaStore, parent_fh: FicusFileHandle, fh: FicusFileHandle
    ) -> None:
        aux = store.read_file_aux(parent_fh, fh)
        prior = aux.vv
        aux.vv = aux.vv.bump(store.replica_id)
        store.write_file_aux(parent_fh, fh, aux)
        self.record_version("write", fh, aux.vv, parents=(prior,))

    def record_version(self, kind, fh, vv, parents=(), origin="", detail="") -> None:
        """Append one minted/installed version to the provenance ledger.

        Hot path (every vv bump lands here): one attribute check when the
        health plane is off, one ring append of raw immutable references
        when on — the ledger encodes lazily at query time.
        """
        health = self.health
        if health is None or not health.provenance.enabled:
            return
        trace = ""
        if self.telemetry.enabled:
            tc = self.telemetry.tracer.current_context()
            if tc is not None:
                trace = f"{tc.trace_id:x}:{tc.span_id:x}"
        health.provenance.record(
            kind,
            fh.logical,
            vv,
            parents=parents,
            origin=origin,
            detail=detail,
            trace=trace,
        )

    # -- new-version cache (update notification receive side) ------------------

    def _on_datagram(self, src: str, payload: object) -> None:
        if not isinstance(payload, dict) or payload.get("kind") != "new-version":
            return
        try:
            volrep_field = payload["volrep"]
            parent = FicusFileHandle.from_hex(payload["parent"])
            fh = FicusFileHandle.from_hex(payload["fh"])
            src_addr = payload["src"]
        except (KeyError, InvalidArgument):
            return
        # The notification names the *sender's* volume replica; we care if
        # we host ANY replica of the same volume.
        try:
            sender_volrep = VolumeReplicaId.from_hex(volrep_field)
        except InvalidArgument:
            return
        if payload.get("origin") == "sync":
            # Propagation/recon installed a version that already exists at
            # the sender's source; peers' logical caches must invalidate,
            # but minting a new-version note here would make the two
            # pullers notify each other in a loop.
            return
        trace_ctx = TraceContext.from_wire(payload.get("trace"))
        for volrep in self.stores:
            if volrep.volume == sender_volrep.volume:
                if volrep == sender_volrep:
                    # we host the replica the update was applied to (it was
                    # driven here remotely over NFS): nothing to pull — the
                    # notification only matters to the logical-layer cache
                    continue
                key = NewVersionKey(volrep=volrep, parent_fh=parent, fh=fh)
                objkind = payload.get("objkind", "file")
                existing = self._new_versions.get(key)
                if existing is not None and existing.objkind == "dir":
                    # a pending directory note subsumes a file note: the
                    # directory reconciliation pass pulls files too
                    objkind = "dir"
                self._new_versions[key] = NewVersionNote(
                    key=key,
                    src_addr=src_addr,
                    src_volrep=sender_volrep,
                    noted_at=self.clock.now(),
                    objkind=objkind,
                    trace_ctx=trace_ctx,
                )
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter("physical.notifications_received").inc()
                    self.telemetry.events.emit(
                        "notification.received",
                        host=self.host_addr,
                        src=src_addr,
                        fh=fh.logical.to_hex(),
                        objkind=objkind,
                    )

    def pending_new_versions(self) -> list[NewVersionNote]:
        """What the propagation daemon consults."""
        return list(self._new_versions.values())

    def clear_new_version(self, key: NewVersionKey) -> None:
        self._new_versions.pop(key, None)

    @property
    def new_version_cache_size(self) -> int:
        return len(self._new_versions)


#: shared default: a full replica stores everything
_FULL_POLICY = StoragePolicy()
