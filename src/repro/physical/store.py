"""Storage organization of one Ficus volume replica.

"A volume replica is stored entirely within a Unix disk partition" (paper
Section 4.1).  This module manages that storage *through the vnode
interface of the layer below* — normally UFS, but by stackability anything
presenting the same interface.

Layout under the lower layer's root::

    <volrep-hex>/            one UFS directory per hosted volume replica
      .meta                  identity + id-mint counters
      nodes/
        <dirfh-hex>/         the "underlying Unix directory" of one Ficus
                             directory (keyed by the *logical* handle so
                             every replica uses the same key)
          .fdir              the Ficus directory file (entry records)
          .faux              the directory's auxiliary attributes
          <filefh-hex>       a regular file replica's contents
          <filefh-hex>.aux   its auxiliary attributes (version vector...)
          <filefh-hex>.shadow  transient shadow during atomic propagation

Regular files live inside their directory's UFS directory — the "on-disk
file organization closely parallels the logical Ficus name space topology"
(Section 2.6), which is what lets the UFS caches exploit directory
locality.  A file with several names is hard-linked (contents and aux)
into each naming directory's UFS directory.  Ficus *directories* are keyed
flat in ``nodes/`` so that the directory DAG (multiple names for one
directory, a consequence of concurrent renames) needs no extra mechanism.
"""

from __future__ import annotations

from dataclasses import replace

from repro import fastpath
from repro.errors import FileNotFound, InvalidArgument
from repro.telemetry import MetricsRegistry
from repro.physical.wire import (
    AUX_SUFFIX,
    DELTA_BLOCK_SIZE,
    EMPTY_DIGEST,
    FAUX_NAME,
    FDIR_NAME,
    META_NAME,
    SHADOW_SUFFIX,
    AuxAttributes,
    BlockDigests,
    DirectoryEntry,
    EntryId,
    EntryType,
    content_digest,
    decode_directory,
    encode_directory,
    split_blocks,
    xor_fold,
)
from repro.util import (
    FicusFileHandle,
    FileId,
    VolumeId,
    VolumeReplicaId,
    decode_record,
    encode_record,
)
from repro.vnode.interface import Vnode
from repro.vv import VersionVector

#: Every volume root directory has this well-known file-id (issuer 0 is
#: reserved for volume genesis, so no replica's mint can collide with it).
ROOT_FILE_ID = FileId(0, 1)


def volume_root_handle(volume: VolumeId) -> FicusFileHandle:
    """The logical handle of a volume's root directory."""
    return FicusFileHandle(volume, ROOT_FILE_ID)


def entries_fold(entries: list[DirectoryEntry]) -> str:
    """Order-independent fold of a directory's entry records."""
    fold = ""
    for entry in entries:
        fold = xor_fold(fold, entry.fold_component())
    return fold


def _find_cache_epoch(root: Vnode) -> object | None:
    """Walk down a vnode chain to the storage bottom's epoch provider.

    Returns the first object exposing ``cache_epoch`` (the UFS vnode
    adaptor; see :attr:`BufferCache.epoch`), or ``None`` when the stack
    has no such bottom — decoded caches then rely purely on write-side
    invalidation through this store.
    """
    node: object | None = root
    while node is not None:
        if hasattr(node, "cache_epoch"):
            return node
        node = getattr(node, "lower", None)
    return None


def file_component(fh: FicusFileHandle, vv) -> str:
    """One stored child file's contribution to its directory's fold."""
    return content_digest(fh.logical.to_hex(), vv.encode())


class ReplicaStore:
    """Reads and writes one volume replica's on-disk structures."""

    def __init__(
        self,
        lower_root: Vnode,
        volrep: VolumeReplicaId,
        metrics: MetricsRegistry | None = None,
    ):
        self.lower_root = lower_root
        self.volrep = volrep
        self._metrics = metrics
        self._base = lower_root.lookup(volrep.to_hex())
        self._nodes = self._base.lookup("nodes")
        #: memoized subtree recon digests, cleared on every mutation; a
        #: converged replica answers repeated sync probes from memory
        self._subtree_memo: dict[FicusFileHandle, str] = {}
        #: subtree digest at the last wholesale ancestor refresh, so a
        #: converged replica pays the refresh walk once per state rather
        #: than once per recon tick (in-memory: a crash only costs one
        #: extra walk after reboot)
        self._ancestor_sync_memo: dict[FicusFileHandle, str] = {}
        # -- decoded-metadata caches (the PR-8 hot path) ------------------
        # Every entry is stamped with the storage bottom's buffer-cache
        # epoch: when the block cache goes cold (invalidate_all, fault
        # injection) the decoded caches go cold with it, preserving the
        # paper's E3/E4 disk-I/O accounting byte for byte.  Mutations
        # through this store update or drop the affected keys directly.
        self._epoch_node = _find_cache_epoch(lower_root)
        # A storage bottom with caching disabled (the A2 "no caches"
        # ablation) disables the decoded caches with it; stacks without
        # an epoch provider (NFS-hopped storage) keep them on and rely
        # on write-side invalidation.
        self._caches_enabled = getattr(self._epoch_node, "caches_enabled", True)
        self._dir_vnode_cache: dict[str, tuple[int, Vnode]] = {}
        self._child_vnode_cache: dict[tuple[str, str], tuple[int, Vnode]] = {}
        self._entries_cache: dict[str, tuple[int, list[DirectoryEntry]]] = {}
        self._dir_aux_cache: dict[str, tuple[int, AuxAttributes]] = {}
        self._file_aux_cache: dict[str, tuple[int, AuxAttributes]] = {}

    def _epoch(self) -> int:
        node = self._epoch_node
        return node.cache_epoch if node is not None else 0

    def _cache_get(self, cache: dict, key) -> object | None:
        if not fastpath.ENABLED or not self._caches_enabled:
            return None
        entry = cache.get(key)
        if entry is None:
            return None
        if entry[0] != self._epoch():
            del cache[key]
            return None
        return entry[1]

    def _cache_put(self, cache: dict, key, value) -> None:
        if fastpath.ENABLED and self._caches_enabled:
            cache[key] = (self._epoch(), value)
        else:
            cache.pop(key, None)

    def _count(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

    # -- construction -------------------------------------------------------

    @classmethod
    def create(
        cls,
        lower_root: Vnode,
        volrep: VolumeReplicaId,
        metrics: MetricsRegistry | None = None,
    ) -> "ReplicaStore":
        """Initialize storage for a brand-new volume replica."""
        base = lower_root.mkdir(volrep.to_hex())
        meta = base.create(META_NAME)
        meta.write(
            0,
            encode_record(
                {
                    "volrep": volrep.to_hex(),
                    "next_unique": "1",
                    "next_seq": "1",
                }
            ).encode("utf-8"),
        )
        base.mkdir("nodes")
        store = cls(lower_root, volrep, metrics=metrics)
        root_fh = volume_root_handle(volrep.volume)
        store.create_directory_storage(root_fh, EntryType.DIRECTORY)
        return store

    @classmethod
    def attach(
        cls,
        lower_root: Vnode,
        volrep: VolumeReplicaId,
        metrics: MetricsRegistry | None = None,
    ) -> "ReplicaStore":
        """Open existing volume-replica storage (e.g. after host restart)."""
        return cls(lower_root, volrep, metrics=metrics)

    @classmethod
    def exists(cls, lower_root: Vnode, volrep: VolumeReplicaId) -> bool:
        try:
            lower_root.lookup(volrep.to_hex())
            return True
        except FileNotFound:
            return False

    @property
    def volume(self) -> VolumeId:
        return self.volrep.volume

    @property
    def replica_id(self) -> int:
        return self.volrep.replica_id

    def root_handle(self) -> FicusFileHandle:
        return volume_root_handle(self.volume)

    # -- id mints (persisted in .meta) ------------------------------------------

    def _meta_vnode(self) -> Vnode:
        # stable name, rewritten in place — the vnode never goes stale
        meta = self.__dict__.get("_meta")
        if meta is None:
            meta = self._base.lookup(META_NAME)
            if fastpath.ENABLED:
                self._meta = meta
        return meta

    def _read_meta(self) -> dict[str, str]:
        return decode_record(self._meta_vnode().read_all().decode("utf-8"))

    def _write_meta(self, rec: dict[str, str]) -> None:
        meta = self._meta_vnode()
        data = encode_record(rec).encode("utf-8")
        meta.truncate(0)
        meta.write(0, data)

    def new_file_id(self) -> FileId:
        """Mint a file-id: ⟨this replica's id, next unique⟩ (Section 4.2)."""
        rec = self._read_meta()
        unique = int(rec["next_unique"])
        rec["next_unique"] = str(unique + 1)
        self._write_meta(rec)
        return FileId(self.replica_id, unique)

    def new_entry_id(self) -> EntryId:
        """Mint a directory-entry insertion id, unique to this replica."""
        rec = self._read_meta()
        seq = int(rec["next_seq"])
        rec["next_seq"] = str(seq + 1)
        self._write_meta(rec)
        return EntryId(self.replica_id, seq)

    # -- directory storage -----------------------------------------------------

    @staticmethod
    def _dir_key(fh: FicusFileHandle) -> str:
        return fh.logical.to_hex()

    def has_directory(self, fh: FicusFileHandle) -> bool:
        try:
            self.dir_unix_vnode(fh)
            return True
        except FileNotFound:
            return False

    def dir_unix_vnode(self, fh: FicusFileHandle) -> Vnode:
        """The underlying Unix directory of a Ficus directory."""
        key = self._dir_key(fh)
        vnode = self._cache_get(self._dir_vnode_cache, key)
        if vnode is None:
            vnode = self._nodes.lookup(key)
            self._cache_put(self._dir_vnode_cache, key, vnode)
        return vnode

    def _unix_child(self, fh: FicusFileHandle, name: str) -> Vnode:
        """Look up (with caching) one reserved file inside a directory's
        underlying Unix directory.  Mutations that rebind a cached name
        (shadow commit's rename, unlink, directory removal) drop the
        affected keys."""
        key = (self._dir_key(fh), name)
        vnode = self._cache_get(self._child_vnode_cache, key)
        if vnode is None:
            vnode = self.dir_unix_vnode(fh).lookup(name)
            self._cache_put(self._child_vnode_cache, key, vnode)
        return vnode

    def create_directory_storage(
        self,
        fh: FicusFileHandle,
        etype: EntryType,
        graft_volume: str = "",
    ) -> Vnode:
        """Materialize storage for a new Ficus directory (or graft point)."""
        key = self._dir_key(fh)
        unix_dir = self._nodes.mkdir(key)
        fdir = unix_dir.create(FDIR_NAME)
        aux = AuxAttributes(fh=fh.logical, etype=etype, refs=1, graft_volume=graft_volume)
        faux = unix_dir.create(FAUX_NAME)
        faux.write(0, aux.to_bytes())
        self._cache_put(self._dir_vnode_cache, key, unix_dir)
        self._cache_put(self._child_vnode_cache, (key, FDIR_NAME), fdir)
        self._cache_put(self._child_vnode_cache, (key, FAUX_NAME), faux)
        self._cache_put(self._entries_cache, key, [])
        self._cache_put(self._dir_aux_cache, key, replace(aux))
        self._subtree_memo.clear()
        return unix_dir

    def remove_directory_storage(self, fh: FicusFileHandle) -> None:
        """Reclaim a dead directory's storage (refs reached zero)."""
        key = self._dir_key(fh)
        unix_dir = self.dir_unix_vnode(fh)
        for entry in unix_dir.readdir():
            if entry.name in (".", ".."):
                continue
            unix_dir.remove(entry.name)
            self._file_aux_cache.pop(entry.name, None)
        self._nodes.rmdir(key)
        self._dir_vnode_cache.pop(key, None)
        self._entries_cache.pop(key, None)
        self._dir_aux_cache.pop(key, None)
        for child_key in [k for k in self._child_vnode_cache if k[0] == key]:
            del self._child_vnode_cache[child_key]
        self._subtree_memo.clear()

    def read_entries(self, fh: FicusFileHandle) -> list[DirectoryEntry]:
        """All entries of a Ficus directory, tombstones included."""
        key = self._dir_key(fh)
        cached = self._cache_get(self._entries_cache, key)
        if cached is not None:
            # fresh list: callers append/replace before writing back
            return list(cached)
        fdir = self._unix_child(fh, FDIR_NAME)
        entries = decode_directory(fdir.read_all())
        self._cache_put(self._entries_cache, key, list(entries))
        return entries

    def write_entries(self, fh: FicusFileHandle, entries: list[DirectoryEntry]) -> None:
        fdir = self._unix_child(fh, FDIR_NAME)
        data = encode_directory(entries)
        key = self._dir_key(fh)
        try:
            fdir.truncate(0)
            if data:
                fdir.write(0, data)
        except BaseException:
            # the rewrite may have half-landed: decoded copy is untrusted
            self._entries_cache.pop(key, None)
            raise
        self._cache_put(self._entries_cache, key, list(entries))
        self._subtree_memo.clear()
        # keep the entry fold in the aux record current (it already holds
        # the in-memory entry list, so the fold is one pass, no re-read)
        fold = entries_fold(entries)
        aux = self.read_dir_aux(fh)
        if aux.dig_entries != fold:
            aux.dig_entries = fold
            self._write_dir_aux_raw(fh, aux)

    def read_dir_aux(self, fh: FicusFileHandle) -> AuxAttributes:
        key = self._dir_key(fh)
        cached = self._cache_get(self._dir_aux_cache, key)
        if cached is not None:
            # clone: callers mutate the returned record in place
            return replace(cached)
        faux = self._unix_child(fh, FAUX_NAME)
        aux = AuxAttributes.from_bytes(faux.read_all())
        self._cache_put(self._dir_aux_cache, key, replace(aux))
        return aux

    def write_dir_aux(self, fh: FicusFileHandle, aux: AuxAttributes) -> None:
        self._subtree_memo.clear()
        self._write_dir_aux_raw(fh, aux)

    def _write_dir_aux_raw(self, fh: FicusFileHandle, aux: AuxAttributes) -> None:
        faux = self._unix_child(fh, FAUX_NAME)
        data = aux.to_bytes()
        key = self._dir_key(fh)
        try:
            faux.truncate(0)
            faux.write(0, data)
        except BaseException:
            self._dir_aux_cache.pop(key, None)
            raise
        self._cache_put(self._dir_aux_cache, key, replace(aux))

    def _fold_file_into_dir(
        self,
        parent: FicusFileHandle,
        out_component: str = "",
        in_component: str = "",
    ) -> None:
        """Incrementally update a directory's stored-child-file fold."""
        self._subtree_memo.clear()
        aux = self.read_dir_aux(parent)
        fold = aux.dig_files
        if out_component:
            fold = xor_fold(fold, out_component)
        if in_component:
            fold = xor_fold(fold, in_component)
        if fold != aux.dig_files:
            aux.dig_files = fold
            self._write_dir_aux_raw(parent, aux)

    # -- regular-file storage (lives inside the parent's Unix directory) --------

    @staticmethod
    def _file_key(fh: FicusFileHandle) -> str:
        return fh.logical.to_hex()

    def file_vnode(self, parent: FicusFileHandle, fh: FicusFileHandle) -> Vnode:
        """The contents vnode of a regular-file replica."""
        return self._unix_child(parent, self._file_key(fh))

    def aux_vnode(self, parent: FicusFileHandle, fh: FicusFileHandle) -> Vnode:
        return self._unix_child(parent, self._file_key(fh) + AUX_SUFFIX)

    def read_file_aux(self, parent: FicusFileHandle, fh: FicusFileHandle) -> AuxAttributes:
        # Keyed by the FILE (not the ⟨parent, file⟩ pair): a hard-linked
        # file's aux is one shared inode, so a write through any naming
        # directory must be seen through every other name.
        key = self._file_key(fh)
        cached = self._cache_get(self._file_aux_cache, key)
        if cached is not None:
            return replace(cached)
        aux = AuxAttributes.from_bytes(self.aux_vnode(parent, fh).read_all())
        self._cache_put(self._file_aux_cache, key, replace(aux))
        return aux

    def write_file_aux(
        self, parent: FicusFileHandle, fh: FicusFileHandle, aux: AuxAttributes
    ) -> None:
        vnode = self.aux_vnode(parent, fh)
        old = self.read_file_aux(parent, fh)
        data = aux.to_bytes()
        key = self._file_key(fh)
        try:
            vnode.truncate(0)
            vnode.write(0, data)
        except BaseException:
            self._file_aux_cache.pop(key, None)
            raise
        self._cache_put(self._file_aux_cache, key, replace(aux))
        if old.vv != aux.vv:
            self._fold_file_into_dir(
                parent,
                out_component=file_component(fh, old.vv),
                in_component=file_component(fh, aux.vv),
            )

    def create_file_storage(
        self,
        parent: FicusFileHandle,
        fh: FicusFileHandle,
        etype: EntryType = EntryType.FILE,
        merge_policy: str = "",
    ) -> Vnode:
        """Materialize contents + aux for a new regular file or symlink.

        The fresh aux record retains the empty file as the merge ancestor:
        creation is the first sync point (every replica starts from the
        same nothing).
        """
        unix_dir = self.dir_unix_vnode(parent)
        key = self._file_key(fh)
        contents = unix_dir.create(key)
        aux = AuxAttributes(
            fh=fh.logical,
            etype=etype,
            refs=1,
            merge_policy=merge_policy,
            ancestor=AuxAttributes.encode_ancestor([]),
        )
        aux_file = unix_dir.create(key + AUX_SUFFIX)
        aux_file.write(0, aux.to_bytes())
        dir_key = self._dir_key(parent)
        self._cache_put(self._child_vnode_cache, (dir_key, key), contents)
        self._cache_put(self._child_vnode_cache, (dir_key, key + AUX_SUFFIX), aux_file)
        self._cache_put(self._file_aux_cache, key, replace(aux))
        self._fold_file_into_dir(parent, in_component=file_component(fh, aux.vv))
        return contents

    def link_file_storage(
        self,
        src_parent: FicusFileHandle,
        dst_parent: FicusFileHandle,
        fh: FicusFileHandle,
    ) -> None:
        """Hard-link a file's contents and aux into another directory.

        Gives the file a second name without copying: both Unix names share
        one inode, so updates and version-vector changes are seen through
        every name.
        """
        src_dir = self.dir_unix_vnode(src_parent)
        dst_dir = self.dir_unix_vnode(dst_parent)
        key = self._file_key(fh)
        dst_dir.link(src_dir.lookup(key), key)
        dst_dir.link(src_dir.lookup(key + AUX_SUFFIX), key + AUX_SUFFIX)
        aux = self.read_file_aux(dst_parent, fh)
        self._fold_file_into_dir(dst_parent, in_component=file_component(fh, aux.vv))

    def unlink_file_storage(self, parent: FicusFileHandle, fh: FicusFileHandle) -> None:
        """Drop one directory's name for a file (UFS frees at last link)."""
        unix_dir = self.dir_unix_vnode(parent)
        key = self._file_key(fh)
        try:
            aux = self.read_file_aux(parent, fh)
        except (FileNotFound, InvalidArgument):
            aux = None
        unix_dir.remove(key)
        unix_dir.remove(key + AUX_SUFFIX)
        try:
            unix_dir.remove(key + SHADOW_SUFFIX)
        except FileNotFound:
            pass
        dir_key = self._dir_key(parent)
        self._child_vnode_cache.pop((dir_key, key), None)
        self._child_vnode_cache.pop((dir_key, key + AUX_SUFFIX), None)
        self._file_aux_cache.pop(key, None)
        if aux is not None:
            self._fold_file_into_dir(parent, out_component=file_component(fh, aux.vv))
        else:
            self._subtree_memo.clear()

    def has_file(self, parent: FicusFileHandle, fh: FicusFileHandle) -> bool:
        try:
            self.file_vnode(parent, fh)
            return True
        except FileNotFound:
            return False

    # -- shadow files (single-file atomic commit, paper Section 3.2) -----------

    def shadow_vnode(self, parent: FicusFileHandle, fh: FicusFileHandle, create: bool = False) -> Vnode:
        unix_dir = self.dir_unix_vnode(parent)
        key = self._file_key(fh) + SHADOW_SUFFIX
        try:
            return unix_dir.lookup(key)
        except FileNotFound:
            if not create:
                raise
            self._count("store.shadows_created")
            return unix_dir.create(key)

    def commit_shadow(
        self, parent: FicusFileHandle, fh: FicusFileHandle, vv: VersionVector
    ) -> None:
        """Atomically replace the file contents with its shadow.

        "a shadow file replica is used to hold the new version until it is
        completely propagated, and then the shadow atomically replaces the
        original by changing a low-level directory reference."  The
        low-level reference change is a UFS rename.
        """
        unix_dir = self.dir_unix_vnode(parent)
        key = self._file_key(fh)
        unix_dir.rename(key + SHADOW_SUFFIX, unix_dir, key)
        # the rename rebound the contents name to the shadow's inode: any
        # cached contents vnode for this name is now the WRONG file
        self._child_vnode_cache.pop((self._dir_key(parent), key), None)
        aux = self.read_file_aux(parent, fh)
        aux.vv = vv
        # a commit installs contents both replicas now share — a sync
        # point, so the installed version becomes the retained ancestor
        aux.ancestor = self._ancestor_record(parent, fh)
        self.write_file_aux(parent, fh, aux)
        self._count("store.shadow_commits")

    def abort_shadow(self, parent: FicusFileHandle, fh: FicusFileHandle) -> None:
        """Discard an uncommitted shadow ("the shadow discarded")."""
        try:
            self.dir_unix_vnode(parent).remove(self._file_key(fh) + SHADOW_SUFFIX)
        except FileNotFound:
            pass

    # -- merge-ancestor retention (three-way conflict resolution) ---------------

    def _ancestor_record(self, parent: FicusFileHandle, fh: FicusFileHandle) -> str:
        """Encode the current contents' block digests as an ancestor record."""
        contents = self.file_vnode(parent, fh).read_all()
        return AuxAttributes.encode_ancestor(
            [content_digest(block) for block in split_blocks(contents)]
        )

    def note_file_synced(self, parent: FicusFileHandle, fh: FicusFileHandle) -> None:
        """Refresh the retained merge ancestor at an observed sync point.

        Called when reconciliation sees the local and remote versions
        EQUAL: the replicas demonstrably share these contents, so they are
        the latest common ancestor either side can prove.  Local writes
        never touch the record — only sync points do — which is what lets
        two later-conflicting hosts hold the *same* ancestor.
        """
        aux = self.read_file_aux(parent, fh)
        record = self._ancestor_record(parent, fh)
        if aux.ancestor != record:
            aux.ancestor = record
            # vv unchanged, so this never disturbs the recon digests
            self.write_file_aux(parent, fh, aux)

    def note_subtree_synced(self, fh: FicusFileHandle) -> None:
        """Refresh merge ancestors across a subtree proven equal to a peer.

        Reconciliation calls this when a subtree prune fires: the remote's
        subtree digest matched ours, so every file below this directory is
        demonstrably common — the same sync point ``note_file_synced``
        records per file, observed wholesale.  Without this hook the
        replica that *originated* an update would never retain an
        ancestor, because pruning skips the per-file EQUAL visit.
        """
        self._note_subtree_synced(fh.logical, set())

    def _note_subtree_synced(self, fh: FicusFileHandle, visiting: set[FicusFileHandle]) -> None:
        if fh in visiting:
            return
        visiting.add(fh)
        digest = self._subtree_digest(fh, set())
        if self._ancestor_sync_memo.get(fh) == digest:
            return  # already refreshed for this exact subtree state
        for entry in self.read_entries(fh):
            if not entry.live:
                continue
            if entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT):
                if self.has_directory(entry.fh):
                    self._note_subtree_synced(entry.fh.logical, visiting)
            elif entry.etype == EntryType.FILE and self.has_file(fh, entry.fh):
                self.note_file_synced(fh, entry.fh)
        self._ancestor_sync_memo[fh] = digest

    def scavenge_shadows(self, fh: FicusFileHandle) -> int:
        """Crash recovery: drop every orphan shadow in one directory."""
        unix_dir = self.dir_unix_vnode(fh)
        dropped = 0
        for entry in unix_dir.readdir():
            if entry.name.endswith(SHADOW_SUFFIX):
                unix_dir.remove(entry.name)
                dropped += 1
        if dropped:
            self._count("store.shadows_scavenged", dropped)
        return dropped

    # -- recon digests (subtree pruning, Merkle-style) ---------------------------

    def directory_digest(self, fh: FicusFileHandle) -> str:
        """This directory's own recon digest: vv + entry fold + file fold."""
        aux = self.read_dir_aux(fh)
        return content_digest(
            aux.vv.encode(),
            aux.dig_entries or EMPTY_DIGEST,
            aux.dig_files or EMPTY_DIGEST,
        )

    def subtree_digest(self, fh: FicusFileHandle) -> str:
        """The recon digest of everything reachable from one directory.

        Folds the directory's own digest with each stored child
        directory's subtree digest.  Memoized until the next mutation, so
        a converged replica answers repeated probes without touching disk.
        """
        return self._subtree_digest(fh.logical, set())

    def _subtree_digest(self, fh: FicusFileHandle, visiting: set[FicusFileHandle]) -> str:
        cached = self._subtree_memo.get(fh)
        if cached is not None:
            return cached
        local = self.directory_digest(fh)
        if fh in visiting:
            return local  # cycle guard; the namespace is a DAG in practice
        visiting.add(fh)
        child_fhs = sorted(
            {
                entry.fh.logical
                for entry in self.read_entries(fh)
                if entry.live
                and entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT)
                and self.has_directory(entry.fh)
            },
            key=lambda child: child.to_hex(),
        )
        parts = [local]
        for child in child_fhs:
            parts.append(child.to_hex())
            parts.append(self._subtree_digest(child, visiting))
        visiting.discard(fh)
        digest = content_digest(*parts)
        self._subtree_memo[fh] = digest
        return digest

    def stored_child_directories(self, fh: FicusFileHandle) -> list[FicusFileHandle]:
        """Live child directories (and graft points) with storage here."""
        return sorted(
            {
                entry.fh.logical
                for entry in self.read_entries(fh)
                if entry.live
                and entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT)
                and self.has_directory(entry.fh)
            },
            key=lambda child: child.to_hex(),
        )

    def refresh_dir_digests(self, fh: FicusFileHandle) -> None:
        """Authoritatively recompute one directory's digest components.

        The incremental folds can drift when a hard-linked file's aux is
        rewritten through a *different* naming directory (that path cannot
        see this parent).  Drift only delays pruning — digest inequality
        never skips needed work — and reconciliation calls this to
        re-anchor the folds from the actual stored state.
        """
        fh = fh.logical
        entries = self.read_entries(fh)
        fold_entries = entries_fold(entries)
        fold_files = ""
        seen: set[FicusFileHandle] = set()
        for entry in entries:
            child = entry.fh.logical
            if (
                not entry.live
                or entry.etype not in (EntryType.FILE, EntryType.SYMLINK)
                or child in seen
                or not self.has_file(fh, child)
            ):
                continue
            seen.add(child)
            fold_files = xor_fold(fold_files, file_component(child, self.read_file_aux(fh, child).vv))
        aux = self.read_dir_aux(fh)
        if aux.dig_entries != fold_entries or aux.dig_files != fold_files:
            aux.dig_entries = fold_entries
            aux.dig_files = fold_files
            self._subtree_memo.clear()
            self._write_dir_aux_raw(fh, aux)

    # -- block signatures (rsync-style delta propagation) ------------------------

    def file_block_digests(self, parent: FicusFileHandle, fh: FicusFileHandle) -> BlockDigests:
        """Content hashes of one file replica's fixed-size blocks."""
        contents = self.file_vnode(parent, fh).read_all()
        aux = self.read_file_aux(parent, fh)
        return BlockDigests(
            block_size=DELTA_BLOCK_SIZE,
            size=len(contents),
            vv=aux.vv,
            digests=[content_digest(block) for block in split_blocks(contents)],
        )

    def read_file_blocks(
        self, parent: FicusFileHandle, fh: FicusFileHandle, indices: list[int]
    ) -> dict[int, bytes]:
        """Fetch selected fixed-size blocks of one file replica."""
        vnode = self.file_vnode(parent, fh)
        out: dict[int, bytes] = {}
        for index in sorted({int(i) for i in indices}):
            data = vnode.read(index * DELTA_BLOCK_SIZE, DELTA_BLOCK_SIZE)
            if data:
                out[index] = data
        return out

    # -- directory enumeration (for reconciliation sweeps) -----------------------

    def all_directory_handles(self) -> list[FicusFileHandle]:
        """Every Ficus directory with storage in this volume replica."""
        out = []
        for entry in self._nodes.readdir():
            if entry.name in (".", ".."):
                continue
            try:
                out.append(FicusFileHandle.from_hex(entry.name))
            except InvalidArgument:
                continue
        return out
