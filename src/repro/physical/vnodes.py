"""Vnodes exported by the Ficus physical layer.

The physical layer "implements the concept of a file replica" (paper
Section 2.6).  Its vnodes are:

* :class:`PhysicalRootVnode` — names the volume replicas this host stores.
* :class:`PhysicalDirVnode` — one Ficus directory replica (or graft
  point).  Plain-name lookups perform the dual mapping (name -> Ficus file
  handle via the directory file, handle -> inode via the hex-encoded UFS
  name).  Update-session bracketing and attribute fetches are first-class
  vnode operations (``session_open``/``session_close``/``getattrs_batch``)
  forwarded explicitly by our NFS; the remaining replica-addressed control
  operations — access by handle, shadow and commit for atomic propagation,
  version-vector maintenance — still travel as encoded ``@@op|...`` names
  so they work unmodified through an intervening NFS layer.
* :class:`PhysicalFileVnode` — one regular-file (or symlink) replica;
  writes advance the replica's version vector.

Name conflicts between live entries (possible after optimistic concurrent
inserts) are repaired *deterministically at read time*: every replica
computes the same effective names from the same entry set, so the repair
itself needs no coordination.
"""

from __future__ import annotations

import dataclasses

from repro.errors import (
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotSupported,
)
from repro.physical.store import ReplicaStore
from repro.physical.wire import (
    AttrBatch,
    AuxAttributes,
    BlockDigests,
    DirectoryEntry,
    EntryId,
    EntryType,
    SyncProbe,
    decode_op,
    is_encoded_op,
)
from repro.ufs.inode import FileAttributes, FileType
from repro.util import FicusFileHandle
from repro.vnode.interface import ROOT_CTX, DirEntry, OpContext, SetAttrs, Vnode
from repro.vv import VersionVector

#: Separator used when repairing a live-name collision: the colliding
#: entries after the first become ``name#<entry-id>``.
CONFLICT_SEP = "#"


def effective_entries(entries: list[DirectoryEntry]) -> dict[str, DirectoryEntry]:
    """Map user-visible names to live entries, repairing collisions.

    Concurrent partitioned inserts can leave two live entries with the same
    name.  Every replica applies the same rule — the entry with the lowest
    entry-id keeps the plain name, later ones are shown as
    ``name#<entry-id>`` — so the repaired view converges with no messages.
    """
    by_name: dict[str, list[DirectoryEntry]] = {}
    for entry in entries:
        if entry.live:
            by_name.setdefault(entry.name, []).append(entry)
    view: dict[str, DirectoryEntry] = {}
    for name, group in by_name.items():
        group.sort(key=lambda e: e.eid)
        view[name] = group[0]
        for extra in group[1:]:
            view[f"{name}{CONFLICT_SEP}{extra.eid.encode()}"] = extra
    return view


def count_name_collisions(entries: list[DirectoryEntry]) -> int:
    """How many live entries currently need a repaired (suffixed) name."""
    by_name: dict[str, int] = {}
    for entry in entries:
        if entry.live:
            by_name[entry.name] = by_name.get(entry.name, 0) + 1
    return sum(n - 1 for n in by_name.values() if n > 1)


class PhysicalRootVnode(Vnode):
    """Root of the physical layer's namespace: one name per volume replica."""

    def __init__(self, layer: "FicusPhysicalLayer"):  # noqa: F821
        self.layer = layer

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        self.layer.counters.bump("getattr")
        return self.layer.lower_root.getattr(ctx)

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("lookup")
        store = self.layer.store_by_hex(name)
        return self.layer.dir_vnode(store, store.root_handle())

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        self.layer.counters.bump("readdir")
        out = []
        for volrep, store in sorted(self.layer.stores.items(), key=lambda kv: kv[0].to_hex()):
            fileid = store.dir_unix_vnode(store.root_handle()).getattr().fileid
            out.append(DirEntry(name=volrep.to_hex(), fileid=fileid, ftype=FileType.DIRECTORY))
        return out

    def __repr__(self) -> str:
        return f"PhysicalRootVnode({self.layer.host_addr})"


class PhysicalDirVnode(Vnode):
    """One Ficus directory replica (also used for graft points)."""

    def __init__(
        self,
        layer: "FicusPhysicalLayer",  # noqa: F821
        store: ReplicaStore,
        fh: FicusFileHandle,
    ):
        self.layer = layer
        self.store = store
        self.fh = fh.logical
        # stable per Telemetry hub — bound once to shorten the per-op path
        self._tracer = layer.telemetry.tracer

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PhysicalDirVnode)
            and other.store is self.store
            and other.fh == self.fh
        )

    def __hash__(self) -> int:
        return hash((id(self.store), self.fh))

    # -- helpers -----------------------------------------------------------

    def _fdir_vnode(self) -> Vnode:
        from repro.physical.wire import FDIR_NAME

        return self.store.dir_unix_vnode(self.fh).lookup(FDIR_NAME)

    def entries(self) -> list[DirectoryEntry]:
        """All entries including tombstones (reconciliation reads these)."""
        return self.store.read_entries(self.fh)

    def aux(self) -> AuxAttributes:
        return self.store.read_dir_aux(self.fh)

    def _child_vnode(self, entry: DirectoryEntry) -> Vnode:
        if entry.etype == EntryType.LOCATION:
            raise FileNotFound(f"{entry.name!r} is graft-point metadata, not a file")
        if entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT):
            if not self.store.has_directory(entry.fh):
                raise FileNotFound(f"directory {entry.fh} not stored in this volume replica")
            return self.layer.dir_vnode(self.store, entry.fh)
        if not self.store.has_file(self.fh, entry.fh):
            raise ReplicaNotStored(
                f"file {entry.fh} has an entry here but its contents are not "
                "stored in this volume replica yet"
            )
        return self.layer.file_vnode(self.store, self.fh, entry.fh, entry.etype)

    def find_live_by_fh(self, fh: FicusFileHandle) -> DirectoryEntry:
        logical = fh.logical
        for entry in self.entries():
            if entry.live and entry.fh == logical:
                return entry
        raise FileNotFound(f"no live entry for {fh} in directory {self.fh}")

    # -- attributes ----------------------------------------------------------

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        self.layer.counters.bump("getattr")
        attrs = self._fdir_vnode().getattr(ctx)
        attrs = dataclasses.replace(attrs, ftype=FileType.DIRECTORY)
        self.layer.register_vnode(attrs.fileid, self)
        return attrs

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("setattr")
        if attrs.size is not None:
            raise IsADirectory("cannot truncate a directory")
        self._fdir_vnode().setattr(attrs, ctx)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.counters.bump("access")
        attrs = self.getattr(ctx)
        if ctx.cred.uid == 0:
            return True
        shift = 6 if ctx.cred.uid == attrs.uid else 0
        return (attrs.perm >> shift) & mode == mode

    # -- data: a Ficus directory IS a file, so it can be read ------------------

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        """Read the raw directory file (the logical layer and the
        reconciliation protocol parse entries from these bytes)."""
        self.layer.counters.bump("read")
        return self._fdir_vnode().read(offset, length, ctx)

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        raise InvalidArgument("Ficus directories are mutated via insert/remove operations")

    # -- lifetime ---------------------------------------------------------------

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("open")

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("close")

    def inactive(self) -> None:
        self.layer.counters.bump("inactive")

    # -- update sessions and the attribute plane (first-class Ficus ops) --------

    def session_open(self, fh: FicusFileHandle, ctx: OpContext = ROOT_CTX) -> None:
        """Begin an update session on the child file ``fh``."""
        self.layer.counters.bump("session_open")
        self.find_live_by_fh(fh)  # raises FileNotFound for dangling handles
        self.layer.session_open(self.store, self.fh, fh.logical)

    def session_close(self, fh: FicusFileHandle, ctx: OpContext = ROOT_CTX) -> bool:
        """End an update session; the coalesced version bump lands here.
        Returns True when the closing session had updated the replica."""
        self.layer.counters.bump("session_close")
        return self.layer.session_close(self.store, self.fh, fh.logical)

    def getattrs_batch(
        self,
        fhs: list[FicusFileHandle] | None = None,
        ctx: OpContext = ROOT_CTX,
    ) -> AttrBatch:
        """This directory's aux record plus its stored children's, at once.

        Replica selection needs the version vector of every candidate
        anyway; returning them in one reply collapses the logical layer's
        per-replica encoded-lookup probes into a single RPC.
        """
        self.layer.counters.bump("getattrs_batch")
        wanted = None if fhs is None else {fh.logical for fh in fhs}
        children: dict[FicusFileHandle, AuxAttributes] = {}
        for entry in self.entries():
            if not entry.live or entry.etype not in (EntryType.FILE, EntryType.SYMLINK):
                continue
            if wanted is not None and entry.fh not in wanted:
                continue
            if not self.store.has_file(self.fh, entry.fh):
                continue  # entry known but contents not stored here
            children[entry.fh] = self.store.read_file_aux(self.fh, entry.fh)
        return AttrBatch(dir_aux=self.aux(), children=children)

    # -- the sync plane: recon digests and block deltas --------------------------

    def sync_probe(
        self,
        fh: FicusFileHandle | None = None,
        ctx: OpContext = ROOT_CTX,
    ) -> SyncProbe:
        """Recon digest of a directory subtree, plus per-child digests.

        ``fh=None`` probes this directory; a handle probes any directory of
        the same volume replica (so a reconciler needs no per-directory
        lookup RPC).  The child digests let the caller prune converged
        subtrees without issuing one probe per child.
        """
        self.layer.counters.bump("sync_probe")
        target = self.fh if fh is None else fh.logical
        if not self.store.has_directory(target):
            raise FileNotFound(f"directory {target} not stored in this volume replica")
        return SyncProbe(
            digest=self.store.subtree_digest(target),
            children={
                child: self.store.subtree_digest(child)
                for child in self.store.stored_child_directories(target)
            },
        )

    def block_digests(self, fh: FicusFileHandle, ctx: OpContext = ROOT_CTX) -> BlockDigests:
        """Block signatures of the stored child file ``fh`` (rsync-style)."""
        self.layer.counters.bump("block_digests")
        fh = fh.logical
        if not self.store.has_file(self.fh, fh):
            raise ReplicaNotStored(f"file {fh} contents not stored in this volume replica")
        return self.store.file_block_digests(self.fh, fh)

    def read_blocks(
        self,
        fh: FicusFileHandle,
        indices: list[int],
        ctx: OpContext = ROOT_CTX,
    ) -> dict[int, bytes]:
        """Fetch selected blocks of the stored child file ``fh`` in one call."""
        self.layer.counters.bump("read_blocks")
        fh = fh.logical
        if not self.store.has_file(self.fh, fh):
            raise ReplicaNotStored(f"file {fh} contents not stored in this volume replica")
        return self.store.read_file_blocks(self.fh, fh, indices)

    # -- namespace ---------------------------------------------------------------

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("lookup")
        encoded = is_encoded_op(name)
        # enabled-check before building span arguments: lookup is the
        # hottest vnode operation and must stay free when not tracing
        tracer = self._tracer
        if not tracer.enabled:
            return self._encoded_lookup(name) if encoded else self._plain_lookup(name)
        with tracer.span(
            "physical.lookup", layer="physical", host=self.layer.host_addr, encoded=encoded
        ):
            return self._encoded_lookup(name) if encoded else self._plain_lookup(name)

    def _plain_lookup(self, name: str) -> Vnode:
        view = effective_entries(self.entries())
        entry = view.get(name)
        if entry is None:
            raise FileNotFound(f"{name!r} not found in Ficus directory {self.fh}")
        return self._child_vnode(entry)

    def _encoded_lookup(self, name: str) -> Vnode:
        """Dispatch an operation smuggled through the lookup service."""
        op, fields = decode_op(name)
        if op == "byfh":
            return self._child_vnode(self.find_live_by_fh(FicusFileHandle.from_hex(fields[0])))
        if op == "dir":
            fh = FicusFileHandle.from_hex(fields[0])
            if not self.store.has_directory(fh):
                raise FileNotFound(f"directory {fh} not stored in this volume replica")
            return self.layer.dir_vnode(self.store, fh)
        if op == "shadow":
            fh = FicusFileHandle.from_hex(fields[0])
            return self.store.shadow_vnode(self.fh, fh, create=True)
        if op == "commit":
            fh = FicusFileHandle.from_hex(fields[0])
            vv = VersionVector.decode(fields[1])
            self.store.commit_shadow(self.fh, fh, vv)
            return self._child_vnode(self.find_live_by_fh(fh))
        if op == "abortshadow":
            fh = FicusFileHandle.from_hex(fields[0])
            self.store.abort_shadow(self.fh, fh)
            return self
        if op == "mergevv":
            self._merge_dir_vv(VersionVector.decode(fields[0]))
            return self
        if op == "setvv":
            fh = FicusFileHandle.from_hex(fields[0])
            aux = self.store.read_file_aux(self.fh, fh)
            aux.vv = VersionVector.decode(fields[1])
            self.store.write_file_aux(self.fh, fh, aux)
            return self._child_vnode(self.find_live_by_fh(fh))
        if op == "setpolicy":
            fh = FicusFileHandle.from_hex(fields[0])
            aux = self.store.read_file_aux(self.fh, fh)
            aux.merge_policy = fields[1]
            # a policy change is an update: bumping the vv makes the tag
            # propagate (and win) through normal reconciliation
            prior = aux.vv
            aux.vv = aux.vv.bump(self.store.replica_id)
            self.store.write_file_aux(self.fh, fh, aux)
            self.layer.record_version("write", fh, aux.vv, parents=(prior,), detail="setpolicy")
            return self._child_vnode(self.find_live_by_fh(fh))
        raise NotSupported(f"encoded operation {op!r}")

    def _merge_dir_vv(self, remote: VersionVector) -> None:
        aux = self.aux()
        aux.vv = aux.vv.merge(remote)
        self.store.write_dir_aux(self.fh, aux)

    def _bump_dir_vv(self) -> None:
        aux = self.aux()
        aux.vv = aux.vv.bump(self.store.replica_id)
        self.store.write_dir_aux(self.fh, aux)

    # insert arrives as the name argument of create (paper Section 2.3
    # style overloading: NFS passes the string through untouched).

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("create")
        if not is_encoded_op(name):
            raise InvalidArgument(
                "physical-layer create expects an encoded insert operation; "
                "plain creates belong to the logical layer"
            )
        op, fields = decode_op(name)
        if op != "insert":
            raise NotSupported(f"create cannot carry operation {op!r}")
        tracer = self._tracer
        if not tracer.enabled:
            return self._create_decoded(fields)
        with tracer.span("physical.insert", layer="physical", host=self.layer.host_addr):
            return self._create_decoded(fields)

    def _create_decoded(self, fields: list[str]) -> Vnode:
        # The applying replica mints ids the requester left blank — id
        # issuance stays with the volume replica (paper Section 4.2) even
        # when the request crossed an NFS hop.
        eid = EntryId.decode(fields[0]) if fields[0] else self.store.new_entry_id()
        user_name = fields[1]
        if fields[2]:
            fh = FicusFileHandle.from_hex(fields[2])
        else:
            fh = FicusFileHandle(self.store.volume, self.store.new_file_id())
        etype = EntryType(fields[3])
        data = fields[4]
        link_from = FicusFileHandle.from_hex(fields[5]) if fields[5] else None
        from_recon = bool(fields[6])
        # pre-resolver encoders send 7 fields; the policy tag is optional
        merge_policy = fields[7] if len(fields) > 7 else ""
        return self.apply_insert(
            eid, user_name, fh, etype, data, link_from, from_recon, merge_policy
        )

    def apply_insert(
        self,
        eid: EntryId,
        name: str,
        fh: FicusFileHandle,
        etype: EntryType,
        data: str = "",
        link_from: FicusFileHandle | None = None,
        from_recon: bool = False,
        merge_policy: str = "",
    ) -> Vnode:
        """Insert one directory entry and materialize backing storage.

        Idempotent on entry-id: re-applying an insert (an RPC retry or a
        repeated reconciliation) is a no-op.
        """
        if is_encoded_op(name) or "/" in name or "\x00" in name or not name:
            raise InvalidArgument(f"bad Ficus name {name!r}")
        from repro.errors import NameTooLong
        from repro.physical.wire import max_user_name_length

        if len(name) > max_user_name_length():
            # footnote 2: the encoding overhead caps user components at
            # ~200 chars; enforce the worst-case bound uniformly so every
            # entry can be re-encoded through an NFS hop later
            raise NameTooLong(
                f"name of {len(name)} chars exceeds the {max_user_name_length()}-char "
                "budget left by the lookup-overload encoding"
            )
        entries = self.entries()
        for existing in entries:
            if existing.eid == eid:
                return self._child_vnode(existing) if existing.live else self
        fh = fh.logical
        entry = DirectoryEntry(eid=eid, name=name, fh=fh, etype=etype, data=data)
        # materialize storage before publishing the entry
        if etype == EntryType.LOCATION:
            pass  # pure metadata: a graft point's volume-replica record
        elif etype in (EntryType.FILE, EntryType.SYMLINK):
            if not self.store.has_file(self.fh, fh):
                if link_from is not None and self.store.has_file(link_from, fh):
                    self.store.link_file_storage(link_from, self.fh, fh)
                elif from_recon:
                    # Entry learned via reconciliation: contents arrive
                    # later by update propagation; publish the entry only.
                    pass
                else:
                    self.store.create_file_storage(self.fh, fh, etype, merge_policy=merge_policy)
                    # the genesis node: an empty-vv version every later
                    # write chains back to through its parent edge
                    self.layer.record_version("create", fh, VersionVector(), detail=name)
        else:
            if self.store.has_directory(fh):
                daux = self.store.read_dir_aux(fh)
                daux.refs += 1
                self.store.write_dir_aux(fh, daux)
            else:
                self.store.create_directory_storage(fh, etype, graft_volume=data)
        entries.append(entry)
        self.store.write_entries(self.fh, entries)
        if not from_recon:
            self._bump_dir_vv()
        if entry.etype == EntryType.LOCATION:
            return self  # metadata entries have no child vnode
        try:
            return self._child_vnode(entry)
        except ReplicaNotStored:
            return self

    def apply_tombstone(self, entry: DirectoryEntry) -> None:
        """Record a remote entry that is already dead, storage-free.

        Reconciliation uses this when the remote replica shows an entry
        that was inserted *and* deleted while we were out of touch: the
        tombstone must be remembered (so the delete still wins against a
        third replica that only saw the insert) but no storage is created.
        Idempotent on entry-id; deletion-acknowledgement sets merge.
        """
        merged_acks = entry.acks | {self.store.replica_id}
        merged_acks2 = entry.acks2
        entries = self.entries()
        for index, existing in enumerate(entries):
            if existing.eid == entry.eid:
                if existing.live:
                    entries[index] = existing.killed(acks=merged_acks).with_acks(
                        merged_acks, merged_acks2
                    )
                    self.store.write_entries(self.fh, entries)
                    self._gc_storage(existing, entries)
                elif not (merged_acks <= existing.acks and merged_acks2 <= existing.acks2):
                    entries[index] = existing.with_acks(
                        existing.acks | merged_acks, existing.acks2 | merged_acks2
                    )
                    self.store.write_entries(self.fh, entries)
                return
        entries.append(entry.killed(acks=merged_acks).with_acks(merged_acks, merged_acks2))
        self.store.write_entries(self.fh, entries)

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("remove")
        if not is_encoded_op(name):
            raise InvalidArgument(
                "physical-layer remove expects an encoded remove operation"
            )
        op, fields = decode_op(name)
        if op != "remove":
            raise NotSupported(f"remove cannot carry operation {op!r}")
        tracer = self._tracer
        if not tracer.enabled:
            self.apply_remove(EntryId.decode(fields[0]), from_recon=bool(fields[1]))
            return
        with tracer.span("physical.remove", layer="physical", host=self.layer.host_addr):
            self.apply_remove(EntryId.decode(fields[0]), from_recon=bool(fields[1]))

    def apply_remove(self, eid: EntryId, from_recon: bool = False) -> None:
        """Tombstone one entry and garbage-collect its backing storage.

        Idempotent: removing an already-dead entry is a no-op; removing an
        unknown entry-id records a tombstone-only entry is NOT done — the
        caller must have seen the insert (reconciliation guarantees this by
        applying inserts before removes).
        """
        entries = self.entries()
        for index, entry in enumerate(entries):
            if entry.eid == eid:
                if not entry.live:
                    return
                entries[index] = entry.killed(acks=frozenset({self.store.replica_id}))
                self.store.write_entries(self.fh, entries)
                self._gc_storage(entry, entries)
                if not from_recon:
                    self._bump_dir_vv()
                return
        raise FileNotFound(f"no entry {eid.encode()} in directory {self.fh}")

    def _gc_storage(self, dead: DirectoryEntry, entries: list[DirectoryEntry]) -> None:
        if dead.etype == EntryType.LOCATION:
            return
        if dead.etype in (EntryType.FILE, EntryType.SYMLINK):
            still_named_here = any(
                e.live and e.fh == dead.fh for e in entries
            )
            if not still_named_here and self.store.has_file(self.fh, dead.fh):
                self.store.unlink_file_storage(self.fh, dead.fh)
            return
        if not self.store.has_directory(dead.fh):
            return
        daux = self.store.read_dir_aux(dead.fh)
        daux.refs -= 1
        if daux.refs > 0:
            self.store.write_dir_aux(dead.fh, daux)
            return
        # last name gone: reclaim, but only when the directory is empty of
        # live entries (the logical layer enforces rmdir-on-empty; entries
        # arriving later via reconciliation leave an orphan for the GC
        # daemon rather than losing data).
        sub_entries = self.store.read_entries(dead.fh)
        if any(e.live for e in sub_entries):
            self.store.write_dir_aux(dead.fh, daux)
            return
        self.store.remove_directory_storage(dead.fh)

    def rename(
        self,
        src_name: str,
        dst_dir: Vnode,
        dst_name: str,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        raise NotSupported(
            "the logical layer composes rename from insert + remove; the "
            "physical layer has no rename of its own"
        )

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        # mkdir carries the same encoded insert as create
        return self.create(name, perm, ctx)

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.remove(name, ctx)

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        self.layer.counters.bump("readdir")
        out = []
        type_map = {
            EntryType.FILE: FileType.REGULAR,
            EntryType.SYMLINK: FileType.SYMLINK,
            EntryType.DIRECTORY: FileType.DIRECTORY,
            EntryType.GRAFT_POINT: FileType.DIRECTORY,
        }
        for name, entry in sorted(effective_entries(self.entries()).items()):
            if entry.etype == EntryType.LOCATION:
                continue  # graft-point metadata is not user-visible
            out.append(
                DirEntry(
                    name=name,
                    fileid=entry.fh.file_id.unique,
                    ftype=type_map[entry.etype],
                )
            )
        return out

    def __repr__(self) -> str:
        return f"PhysicalDirVnode({self.store.volrep}, {self.fh})"


class PhysicalFileVnode(Vnode):
    """One regular-file or symlink replica."""

    def __init__(
        self,
        layer: "FicusPhysicalLayer",  # noqa: F821
        store: ReplicaStore,
        parent_fh: FicusFileHandle,
        fh: FicusFileHandle,
        etype: EntryType,
    ):
        self.layer = layer
        self.store = store
        self.parent_fh = parent_fh.logical
        self.fh = fh.logical
        self.etype = etype
        self._tracer = layer.telemetry.tracer

    def _contents(self) -> Vnode:
        return self.store.file_vnode(self.parent_fh, self.fh)

    def aux(self) -> AuxAttributes:
        return self.store.read_file_aux(self.parent_fh, self.fh)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PhysicalFileVnode)
            and other.store is self.store
            and other.fh == self.fh
            and other.parent_fh == self.parent_fh
        )

    def __hash__(self) -> int:
        return hash((id(self.store), self.parent_fh, self.fh))

    # -- lifetime --

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        """Works when the physical layer is local; when an NFS hop is in
        between this never arrives — remote callers bracket updates with
        ``session_open`` on the parent directory vnode instead."""
        self.layer.counters.bump("open")
        self.layer.session_open(self.store, self.parent_fh, self.fh)

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("close")
        self.layer.session_close(self.store, self.parent_fh, self.fh)

    def inactive(self) -> None:
        self.layer.counters.bump("inactive")

    # -- data --

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        self.layer.counters.bump("read")
        tracer = self._tracer
        if not tracer.enabled:
            return self._contents().read(offset, length, ctx)
        with tracer.span("physical.read", layer="physical", host=self.layer.host_addr):
            return self._contents().read(offset, length, ctx)

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        self.layer.counters.bump("write")
        tracer = self._tracer
        if not tracer.enabled:
            return self._write_impl(offset, data, ctx)
        with tracer.span(
            "physical.write", layer="physical", host=self.layer.host_addr, bytes=len(data)
        ):
            return self._write_impl(offset, data, ctx)

    def _write_impl(self, offset: int, data: bytes, ctx: OpContext) -> int:
        written = self._contents().write(offset, data, ctx)
        self.layer.note_update(self.store, self.parent_fh, self.fh)
        return written

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("truncate")
        tracer = self._tracer
        if not tracer.enabled:
            self._contents().truncate(size, ctx)
            self.layer.note_update(self.store, self.parent_fh, self.fh)
            return
        with tracer.span("physical.truncate", layer="physical", host=self.layer.host_addr):
            self._contents().truncate(size, ctx)
            self.layer.note_update(self.store, self.parent_fh, self.fh)

    def fsync(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("fsync")
        self._contents().fsync(ctx)

    # -- attributes --

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        self.layer.counters.bump("getattr")
        attrs = self._contents().getattr(ctx)
        if self.etype == EntryType.SYMLINK:
            attrs = dataclasses.replace(attrs, ftype=FileType.SYMLINK)
        self.layer.register_vnode(attrs.fileid, self)
        return attrs

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("setattr")
        self._contents().setattr(attrs, ctx)
        if attrs.size is not None:
            self.layer.note_update(self.store, self.parent_fh, self.fh)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.counters.bump("access")
        attrs = self.getattr(ctx)
        if ctx.cred.uid == 0:
            return True
        shift = 6 if ctx.cred.uid == attrs.uid else 0
        return (attrs.perm >> shift) & mode == mode

    # -- symlink --

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        self.layer.counters.bump("readlink")
        if self.etype != EntryType.SYMLINK:
            raise InvalidArgument("not a symlink")
        return self._contents().read_all(ctx).decode("utf-8")

    # -- directories only --

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        raise NotADirectory(f"{self.fh} is not a directory")

    def __repr__(self) -> str:
        return f"PhysicalFileVnode({self.store.volrep}, {self.fh})"


class ReplicaNotStored(FileNotFound):
    """The entry exists, but this volume replica stores no copy of the file.

    "A volume replica may contain at most one replica of a file, but need
    not store a replica of any particular file" (paper Section 4.1).  The
    logical layer reacts by selecting a different replica.
    """

    errno_name = "ENOTSTORED"
