"""On-disk record formats and encoded operations for the physical layer.

Two kinds of byte formats live here:

* **Ficus directory entries and auxiliary attributes** — Ficus directories
  are stored as UFS *files* of entry records, and "replication-related
  attributes [are] stored in an auxiliary file" (paper Section 2.6).

* **Encoded vnode operations.**  The vnode interface predates Ficus, and
  the original NFS dropped calls it did not know — so Ficus "overloaded
  the lookup service by encoding an open/close request as a null-terminated
  ASCII string of sufficient length to be passed on by NFS without
  interpretation or interference" (Section 2.3).  Our NFS now forwards
  session open/close and attribute batches as first-class operations, so
  only the *replica-addressed* control operations remain encoded (shadow
  access, commit, version merging, by-handle fetches) plus the
  entry-management operations through the name argument of create/remove.
  The footnoted cost is reproduced exactly: the encoding overhead shrinks
  the usable name component from 255 to about 200 characters.
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro import fastpath
from repro.errors import InvalidArgument, NameTooLong
from repro.ufs.layout import MAX_NAME_LEN
from repro.util import FicusFileHandle, decode_record, encode_record, escape_value, unescape_value
from repro.vv import VersionVector

#: Prefix marking an encoded operation smuggled through a name argument.
#: Real names may not start with this (checked at insert time).
OP_PREFIX = "@@"

#: Separator between fields of an encoded operation.
OP_SEP = "|"

#: Reserved UFS names inside a Ficus directory's underlying Unix directory.
FDIR_NAME = ".fdir"  # the Ficus directory entry file
FAUX_NAME = ".faux"  # the directory's auxiliary attribute file
META_NAME = ".meta"  # volume-replica counters (file-id / entry-id mints)
AUX_SUFFIX = ".aux"  # per-file auxiliary attribute file
SHADOW_SUFFIX = ".shadow"  # transient shadow replica during propagation

# ---------------------------------------------------------------------------
# Recon digests and block signatures (the incremental sync plane)
# ---------------------------------------------------------------------------

#: Fixed block size for block-delta propagation (rsync-style signatures).
DELTA_BLOCK_SIZE = 4096

#: Width of a recon digest in hex characters (128 bits of SHA-256).
DIGEST_HEX_LEN = 32

#: The fold identity: the digest of "nothing" (an empty entry/child set).
EMPTY_DIGEST = "0" * DIGEST_HEX_LEN


def content_digest(*parts: bytes | str) -> str:
    """Collision-resistant digest of some byte/str parts (hex, 128 bits)."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            part = part.encode("utf-8")
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.hexdigest()[:DIGEST_HEX_LEN]


def xor_fold(accumulated: str, part: str) -> str:
    """Fold one digest into an accumulator, order-independently.

    XOR makes the fold commutative and self-inverse, so a mutation can
    update an accumulated digest incrementally: fold the old component out
    and the new one in, without rescanning the whole set.
    """
    if not accumulated:
        accumulated = EMPTY_DIGEST
    if not part:
        part = EMPTY_DIGEST
    return format(int(accumulated, 16) ^ int(part, 16), f"0{DIGEST_HEX_LEN}x")


class EntryType(enum.Enum):
    """What a Ficus directory entry names."""

    FILE = "file"
    DIRECTORY = "dir"
    SYMLINK = "symlink"
    #: A graft point: "a special file type used to indicate that a
    #: (specific) volume is to be transparently grafted at this point in
    #: the name space" (paper Section 4.3).
    GRAFT_POINT = "graft"
    #: A volume-replica location record inside a graft point: "the list of
    #: volume replicas and the (Internet) addresses of the managing Ficus
    #: physical layers are conveniently maintained as directory entries"
    #: (Section 4.3).  Pure metadata — no backing storage.
    LOCATION = "loc"


@dataclass(frozen=True, order=True)
class EntryId:
    """Globally unique id of one directory-entry *insertion event*.

    Reinserting a deleted name is a new event with a new id, which is what
    lets insert/delete reconciliation converge without clocks.
    """

    replica_id: int
    seq: int

    def encode(self) -> str:
        # Frozen value object: encode once (hot in directory folds).
        cached = self.__dict__.get("_enc")
        if cached is None:
            cached = f"{self.replica_id:x}:{self.seq:x}"
            object.__setattr__(self, "_enc", cached)
        return cached

    @classmethod
    def decode(cls, text: str) -> "EntryId":
        try:
            rep, seq = text.split(":")
            return cls(int(rep, 16), int(seq, 16))
        except ValueError as exc:
            raise InvalidArgument(f"bad entry id {text!r}") from exc


@dataclass
class DirectoryEntry:
    """One record of a Ficus directory file.

    ``status`` is ``live`` or ``dead`` (a tombstone).  Tombstones are kept
    so that a deletion performed in one partition wins over the stale copy
    of the entry in another.  ``data`` carries graft-point payload (the
    storage-site host address for one volume replica).

    Two-phase tombstone collection state (dead entries only): ``acks``
    records which volume replicas have seen the deletion (phase 1);
    ``acks2`` records which replicas have *observed that phase 1 is
    complete* (phase 2).  A tombstone may be purged only when acks2
    covers every replica — purging on a full phase-1 set alone is the
    classic mistake (the purger stops relaying the acknowledgements its
    peers still need).
    """

    eid: EntryId
    name: str
    fh: FicusFileHandle
    etype: EntryType
    status: str = "live"
    data: str = ""
    acks: frozenset[int] = frozenset()
    acks2: frozenset[int] = frozenset()

    @property
    def live(self) -> bool:
        return self.status == "live"

    def killed(self, acks: frozenset[int] = frozenset()) -> "DirectoryEntry":
        return DirectoryEntry(self.eid, self.name, self.fh, self.etype, "dead", self.data, acks)

    def with_acks(
        self, acks: frozenset[int], acks2: frozenset[int] | None = None
    ) -> "DirectoryEntry":
        return DirectoryEntry(
            self.eid,
            self.name,
            self.fh,
            self.etype,
            self.status,
            self.data,
            frozenset(acks),
            frozenset(acks2) if acks2 is not None else self.acks2,
        )

    def to_record(self) -> dict[str, str]:
        rec = {
            "eid": self.eid.encode(),
            "name": self.name,
            "fh": self.fh.to_hex(),
            "type": self.etype.value,
            "status": self.status,
        }
        if self.data:
            rec["data"] = self.data
        if self.acks:
            rec["acks"] = ",".join(str(r) for r in sorted(self.acks))
        if self.acks2:
            rec["acks2"] = ",".join(str(r) for r in sorted(self.acks2))
        return rec

    def encoded_line(self) -> str:
        """This entry's serialized record line, memoized per instance.

        Entries are never mutated in place (``killed``/``with_acks``
        derive new objects), so the encoding of one instance is stable;
        rewriting a directory then re-encodes only the entries that
        actually changed.
        """
        if not fastpath.ENABLED:
            return encode_record(self.to_record())
        cached = self.__dict__.get("_line")
        if cached is None:
            cached = encode_record(self.to_record())
            self._line = cached
        return cached

    def fold_component(self) -> str:
        """This entry's contribution to the directory entry fold."""
        if not fastpath.ENABLED:
            return content_digest(encode_record(self.to_record()))
        cached = self.__dict__.get("_fold")
        if cached is None:
            cached = content_digest(self.encoded_line())
            self._fold = cached
        return cached

    @classmethod
    def from_record(cls, rec: dict[str, str]) -> "DirectoryEntry":
        try:
            return cls(
                eid=EntryId.decode(rec["eid"]),
                name=rec["name"],
                fh=FicusFileHandle.from_hex(rec["fh"]),
                etype=EntryType(rec["type"]),
                status=rec.get("status", "live"),
                data=rec.get("data", ""),
                acks=frozenset(int(r) for r in rec.get("acks", "").split(",") if r),
                acks2=frozenset(int(r) for r in rec.get("acks2", "").split(",") if r),
            )
        except KeyError as exc:
            raise InvalidArgument(f"directory entry missing field {exc}") from exc


@dataclass
class AuxAttributes:
    """Replication attributes of one file replica (the auxiliary file).

    "These attributes would be placed in the inode if we were to modify
    the UFS" (paper Section 2.6).
    """

    fh: FicusFileHandle
    etype: EntryType
    vv: VersionVector = field(default_factory=VersionVector)
    #: live directory entries referencing this object in this volume
    #: replica — drives storage garbage collection for directories.
    refs: int = 1
    #: graft points record their target volume here (hex VolumeId).
    graft_volume: str = ""
    #: recon digest components (directories only; empty = "not computed").
    #: ``dig_entries`` folds every entry record of the directory file;
    #: ``dig_files`` folds (handle, version vector) of each child file
    #: whose contents are stored here.  Maintained incrementally on every
    #: physical-layer mutation and recomputed authoritatively at the end
    #: of each directory reconciliation (hard links can leave a sibling
    #: directory's fold stale; drift only costs a missed prune, and the
    #: recompute self-heals it).
    dig_entries: str = ""
    dig_files: str = ""
    #: merge-policy tag naming the automatic conflict resolver for this
    #: file (regular files only; ``""`` = none declared).  Travels with
    #: the replica through the attribute plane so every host applies the
    #: same resolver to the same conflict.
    merge_policy: str = ""
    #: retained common-ancestor block digests for three-way merging
    #: (regular files only).  ``""`` = no ancestor on record; ``"-"`` =
    #: the ancestor was the empty file; else comma-joined block digests.
    #: Host-local (refreshed at sync points, never propagated as truth),
    #: but both ends of a conflict converge on the same record because
    #: each refresh captures contents the replicas demonstrably shared.
    ancestor: str = ""

    def to_bytes(self) -> bytes:
        rec = {
            "fh": self.fh.to_hex(),
            "type": self.etype.value,
            "vv": self.vv.encode(),
            "refs": str(self.refs),
        }
        if self.graft_volume:
            rec["graftvol"] = self.graft_volume
        if self.dig_entries:
            rec["dige"] = self.dig_entries
        if self.dig_files:
            rec["digf"] = self.dig_files
        if self.merge_policy:
            rec["mpol"] = self.merge_policy
        if self.ancestor:
            rec["anc"] = self.ancestor
        return encode_record(rec).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "AuxAttributes":
        if fastpath.ENABLED:
            cached = _DECODE_AUX_MEMO.get(data)
            if cached is not None:
                _DECODE_AUX_MEMO.move_to_end(data)
                # clone: callers mutate the returned record in place
                return replace(cached)
        rec = decode_record(data.decode("utf-8"))
        try:
            aux = cls(
                fh=FicusFileHandle.from_hex(rec["fh"]),
                etype=EntryType(rec["type"]),
                vv=VersionVector.decode(rec.get("vv", "")),
                refs=int(rec.get("refs", "1")),
                graft_volume=rec.get("graftvol", ""),
                dig_entries=rec.get("dige", ""),
                dig_files=rec.get("digf", ""),
                merge_policy=rec.get("mpol", ""),
                ancestor=rec.get("anc", ""),
            )
        except KeyError as exc:
            raise InvalidArgument(f"aux record missing field {exc}") from exc
        if fastpath.ENABLED:
            _DECODE_AUX_MEMO[data] = replace(aux)
            while len(_DECODE_AUX_MEMO) > _DECODE_AUX_CAP:
                _DECODE_AUX_MEMO.popitem(last=False)
        return aux

    def ancestor_digests(self) -> tuple[str, ...] | None:
        """The retained ancestor as a digest tuple, or ``None`` if absent."""
        if not self.ancestor:
            return None
        if self.ancestor == "-":
            return ()
        return tuple(self.ancestor.split(","))

    @staticmethod
    def encode_ancestor(digests: list[str] | tuple[str, ...]) -> str:
        """Encode block digests for the ``ancestor`` field (never ``""``)."""
        return ",".join(digests) or "-"


@dataclass
class AttrBatch:
    """One directory's worth of auxiliary attributes, fetched in one call.

    The reply of the ``getattrs_batch`` vnode operation: the directory's
    own aux record plus the aux records of the children stored at this
    replica, keyed by the logical half of their file handle (stable across
    replicas, unlike the physical half).  This is the attribute plane —
    replica selection needs every version vector of a directory anyway, so
    shipping them together turns O(children) encoded-lookup RPCs into one.
    """

    dir_aux: AuxAttributes
    children: dict[FicusFileHandle, AuxAttributes] = field(default_factory=dict)

    def child(self, fh: FicusFileHandle) -> AuxAttributes | None:
        return self.children.get(fh.logical)

    def to_wire(self) -> dict[str, object]:
        return {
            "dir": self.dir_aux.to_bytes(),
            "children": {fh.to_hex(): v.to_bytes() for fh, v in self.children.items()},
        }

    @classmethod
    def from_wire(cls, payload: object) -> "AttrBatch":
        if not isinstance(payload, dict) or "dir" not in payload:
            raise InvalidArgument("malformed attribute batch")
        children = payload.get("children", {})
        if not isinstance(children, dict):
            raise InvalidArgument("malformed attribute batch children")
        return cls(
            dir_aux=AuxAttributes.from_bytes(payload["dir"]),
            children={
                FicusFileHandle.from_hex(k): AuxAttributes.from_bytes(v)
                for k, v in children.items()
            },
        )


@dataclass
class SyncProbe:
    """The reply of the ``sync_probe`` vnode operation.

    ``digest`` summarizes one directory's entire subtree — its version
    vector, entry records, stored child-file versions, and (recursively)
    its subdirectories.  Two replicas whose probes match are converged
    below that directory, so reconciliation can skip the subtree without
    reading a single remote directory.  ``children`` carries the subtree
    digest of each stored child directory (keyed by logical handle) so one
    probe prunes or descends per child without further probe RPCs.
    """

    digest: str
    children: dict[FicusFileHandle, str] = field(default_factory=dict)

    def to_wire(self) -> dict[str, object]:
        return {
            "digest": self.digest,
            "children": {fh.to_hex(): d for fh, d in self.children.items()},
        }

    @classmethod
    def from_wire(cls, payload: object) -> "SyncProbe":
        if not isinstance(payload, dict) or "digest" not in payload:
            raise InvalidArgument("malformed sync probe")
        children = payload.get("children", {})
        if not isinstance(children, dict):
            raise InvalidArgument("malformed sync probe children")
        return cls(
            digest=str(payload["digest"]),
            children={FicusFileHandle.from_hex(k): str(v) for k, v in children.items()},
        )


@dataclass
class BlockDigests:
    """The reply of the ``block_digests`` vnode operation.

    Content hashes of one file replica's fixed-size blocks, plus the
    version vector the contents carried when they were hashed, so a puller
    can detect an out-of-band change between its attribute fetch and its
    digest fetch (and fall back to a whole-file copy).
    """

    block_size: int
    size: int
    vv: VersionVector
    digests: list[str] = field(default_factory=list)

    def to_wire(self) -> dict[str, object]:
        return {
            "block_size": self.block_size,
            "size": self.size,
            "vv": self.vv.encode(),
            "digests": list(self.digests),
        }

    @classmethod
    def from_wire(cls, payload: object) -> "BlockDigests":
        if not isinstance(payload, dict) or "digests" not in payload:
            raise InvalidArgument("malformed block digests")
        return cls(
            block_size=int(payload["block_size"]),
            size=int(payload["size"]),
            vv=VersionVector.decode(str(payload.get("vv", ""))),
            digests=[str(d) for d in payload["digests"]],
        )


def split_blocks(data: bytes, block_size: int = DELTA_BLOCK_SIZE) -> list[bytes]:
    """Slice contents into fixed-size blocks (last one may be short)."""
    return [data[i : i + block_size] for i in range(0, len(data), block_size)] if data else []


def encode_directory(entries: list[DirectoryEntry]) -> bytes:
    """Serialize a Ficus directory to its UFS file contents."""
    return "\n".join(entry.encoded_line() for entry in entries).encode("utf-8")


#: Memoized directory decodes, keyed by the raw file bytes.  Entries are
#: immutable by convention, so handing the same objects to every decoder
#: of identical bytes is safe; the returned *list* is always fresh
#: (callers append/replace elements before rewriting).
_DECODE_DIR_MEMO: OrderedDict[bytes, list[DirectoryEntry]] = OrderedDict()
_DECODE_DIR_CAP = 512

#: Memoized aux-record decodes; values are masters, callers get clones
#: (callers mutate vv/refs/digests in place before writing back).
_DECODE_AUX_MEMO: OrderedDict[bytes, "AuxAttributes"] = OrderedDict()
_DECODE_AUX_CAP = 1024


def decode_directory(data: bytes) -> list[DirectoryEntry]:
    """Parse a Ficus directory file back into entries."""
    if fastpath.ENABLED:
        cached = _DECODE_DIR_MEMO.get(data)
        if cached is not None:
            _DECODE_DIR_MEMO.move_to_end(data)
            return list(cached)
    text = data.decode("utf-8")
    if not text:
        return []
    entries = [DirectoryEntry.from_record(decode_record(line)) for line in text.split("\n")]
    if fastpath.ENABLED:
        _DECODE_DIR_MEMO[data] = list(entries)
        while len(_DECODE_DIR_MEMO) > _DECODE_DIR_CAP:
            _DECODE_DIR_MEMO.popitem(last=False)
    return entries


# ---------------------------------------------------------------------------
# Encoded operations (the lookup/create overloading of paper Section 2.3)
# ---------------------------------------------------------------------------


def encode_op(op: str, *fields: str) -> str:
    """Build an encoded operation string: ``@@op|field|field...``.

    Fields are escaped so user-supplied names survive the trip.  The result
    must fit in one UFS name component, which is what costs roughly 55
    characters of user-name budget (255 -> ~200, paper footnote 2).
    """
    encoded = OP_PREFIX + OP_SEP.join([op, *[escape_value(f) for f in fields]])
    if len(encoded) > MAX_NAME_LEN:
        raise NameTooLong(
            f"encoded {op} operation is {len(encoded)} chars; the {MAX_NAME_LEN}-char "
            "UFS name limit leaves roughly 200 for the user name"
        )
    return encoded


def is_encoded_op(name: str) -> bool:
    return name.startswith(OP_PREFIX)


def decode_op(name: str) -> tuple[str, list[str]]:
    """Split an encoded operation into (op, fields)."""
    if not is_encoded_op(name):
        raise InvalidArgument(f"{name!r} is not an encoded operation")
    parts = name[len(OP_PREFIX) :].split(OP_SEP)
    return parts[0], [unescape_value(p) for p in parts[1:]]


# Specific operation builders, so call sites stay typo-proof.


def op_byfh(fh: FicusFileHandle) -> str:
    """Fetch a child vnode directly by file handle."""
    return encode_op("byfh", fh.to_hex())


def op_dir(fh: FicusFileHandle) -> str:
    """Fetch any directory of the same volume replica by handle.

    Used by the reconciliation protocol to address remote directory
    replicas directly instead of walking the path.
    """
    return encode_op("dir", fh.to_hex())


def op_shadow(fh: FicusFileHandle) -> str:
    """Fetch (creating if needed) the shadow vnode of a child file."""
    return encode_op("shadow", fh.to_hex())


def op_commit(fh: FicusFileHandle, vv: VersionVector) -> str:
    """Atomically promote the shadow of ``fh`` with version vector ``vv``."""
    return encode_op("commit", fh.to_hex(), vv.encode())


def op_abort_shadow(fh: FicusFileHandle) -> str:
    """Discard an uncommitted shadow (crash recovery / aborted pull)."""
    return encode_op("abortshadow", fh.to_hex())


def op_insert(
    eid: EntryId | None,
    name: str,
    fh: FicusFileHandle | None,
    etype: EntryType,
    data: str = "",
    link_from: FicusFileHandle | None = None,
    vv: VersionVector | None = None,
    merge_policy: str = "",
) -> str:
    """Insert a directory entry (the name argument of vnode ``create``).

    ``eid`` and/or ``fh`` may be ``None``: the physical replica applying
    the insert then mints them itself, preserving the paper's rule that
    "each volume replica assigns file identifiers to new files
    independently" even when the requesting logical layer is remote.

    ``link_from`` names the directory already holding the file's storage
    when this insert adds an additional name (a cross-directory link).
    ``vv`` carries the entry's origin version for reconciliation-applied
    inserts; local inserts leave it empty and the physical layer bumps.
    ``merge_policy`` declares the file's conflict-resolver tag at create
    time (decoders tolerate its absence for pre-resolver callers).
    """
    return encode_op(
        "insert",
        eid.encode() if eid is not None else "",
        name,
        fh.to_hex() if fh is not None else "",
        etype.value,
        data,
        link_from.to_hex() if link_from is not None else "",
        vv.encode() if vv is not None else "",
        merge_policy,
    )


def op_remove(eid: EntryId, vv: VersionVector | None = None) -> str:
    """Tombstone the entry with id ``eid`` (the name argument of remove)."""
    return encode_op("remove", eid.encode(), vv.encode() if vv is not None else "")


def op_mergevv(vv: VersionVector) -> str:
    """Merge ``vv`` into the directory's own version vector (end of recon)."""
    return encode_op("mergevv", vv.encode())


def op_setvv(fh: FicusFileHandle, vv: VersionVector) -> str:
    """Overwrite a child's version vector (conflict resolution)."""
    return encode_op("setvv", fh.to_hex(), vv.encode())


def op_setpolicy(fh: FicusFileHandle, tag: str) -> str:
    """Declare a child file's merge-policy tag (bumps its version vector
    so the tag propagates with the next reconciliation round)."""
    return encode_op("setpolicy", fh.to_hex(), tag)


#: Overhead the insert encoding steals from the 255-char name budget; the
#: paper reports the usable component length drops to "about 200".
_MAX_USER_NAME_LEN: int | None = None


def max_user_name_length() -> int:
    """Longest user name component guaranteed to survive encoding."""
    global _MAX_USER_NAME_LEN
    if _MAX_USER_NAME_LEN is None:
        probe = op_insert(
            EntryId(0xFFFFFFFF, 0xFFFFFFFF),
            "",
            FicusFileHandle.from_hex("ffffffff.ffffffff.ffffffff.ffffffff.fffffffe"),
            EntryType.GRAFT_POINT,
        )
        _MAX_USER_NAME_LEN = MAX_NAME_LEN - len(probe)
    return _MAX_USER_NAME_LEN
