"""Per-volume-replica storage policies (selective replication).

"A volume replica may contain at most one replica of a file, but need not
store a replica of any particular file" (paper Section 4.1).  A storage
policy decides which files' *contents* this volume replica keeps locally;
directory structure and entries always replicate (they are the name
space), and files the policy declines remain entry-only here — readable
through any replica that does store them, exactly like a file whose
contents have not propagated yet.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass

from repro.physical.wire import DirectoryEntry


class StoragePolicy:
    """Base policy: store everything (the default, a full replica)."""

    name = "full"

    def wants(self, entry: DirectoryEntry, size_hint: int | None = None) -> bool:
        """Should this replica store the contents of ``entry``?"""
        return True


@dataclass
class GlobPolicy(StoragePolicy):
    """Store only files whose names match one of the patterns.

    ``exclude`` patterns override: a name matching both is not stored.
    """

    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()
    name: str = "glob"

    def wants(self, entry: DirectoryEntry, size_hint: int | None = None) -> bool:
        if any(fnmatch.fnmatch(entry.name, pattern) for pattern in self.exclude):
            return False
        return any(fnmatch.fnmatch(entry.name, pattern) for pattern in self.include)


@dataclass
class SizeCapPolicy(StoragePolicy):
    """Store only files at or below a size cap (bytes).

    Useful for small-disk replicas: big artifacts stay entry-only and are
    fetched through fuller replicas on demand.
    """

    max_bytes: int = 1 << 20
    name: str = "size-cap"

    def wants(self, entry: DirectoryEntry, size_hint: int | None = None) -> bool:
        if size_hint is None:
            return True  # unknown size: optimistic
        return size_hint <= self.max_bytes


@dataclass
class CompositePolicy(StoragePolicy):
    """All sub-policies must agree to store."""

    policies: tuple[StoragePolicy, ...] = ()
    name: str = "composite"

    def wants(self, entry: DirectoryEntry, size_hint: int | None = None) -> bool:
        return all(p.wants(entry, size_hint) for p in self.policies)
