"""Integrity checker for Ficus physical-layer storage ("ficus-fsck").

Validates the structural invariants of one volume replica's on-disk
organization, the way :func:`repro.ufs.fsck` validates UFS structure:

* every directory's entry file decodes, and entry-ids are unique;
* no directory holds two live entries with the same (name, handle) pair
  (the cross-host same-name rename artifact reconciliation must resolve);
* live file/symlink entries either have contents + aux storage in the
  naming directory, or are awaiting propagation (entry-only);
* aux records agree with their entries (handle, type);
* directory reference counts in aux equal the number of live entries
  naming the directory across the whole replica;
* directory storage is reachable: every ``nodes/`` directory except the
  volume root is named by at least one live entry (or is a tolerated
  orphan awaiting the GC daemon);
* no stray objects inside the underlying Unix directories (everything is
  a known file, aux, shadow, or metadata name);
* LOCATION entries appear only inside graft points;
* the id mints are ahead of every issued id.

Used by tests as an oracle after arbitrary operation/recon/crash
sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FicusError
from repro.physical.store import ReplicaStore, volume_root_handle
from repro.physical.wire import (
    AUX_SUFFIX,
    FAUX_NAME,
    FDIR_NAME,
    SHADOW_SUFFIX,
    EntryType,
)
from repro.util import FicusFileHandle


@dataclass
class FicusCheckReport:
    """Findings of one checker run; clean when ``problems`` is empty."""

    problems: list[str] = field(default_factory=list)
    directories_checked: int = 0
    entries_checked: int = 0
    #: live file entries whose contents have not been propagated here yet
    entries_awaiting_contents: int = 0
    #: directory storage with zero live names (tolerated, GC's job)
    orphan_directories: int = 0

    @property
    def clean(self) -> bool:
        return not self.problems

    def complain(self, message: str) -> None:
        self.problems.append(message)


def ficus_fsck(store: ReplicaStore, conflict_log=None, resolvers=None) -> FicusCheckReport:
    """Check every structural invariant of one volume replica.

    With ``conflict_log`` the checker also audits conflict-resolution
    bookkeeping: a report marked resolved is only believable when the
    file's current version vector strictly dominates both conflicting
    vvs the report recorded.  With ``resolvers`` (a registry) it further
    complains about any file still sitting unresolved in the log whose
    type a registered resolver covers — automatic resolution should have
    cleared it.  Both arguments are duck-typed so this module keeps no
    dependency on the reconciliation layer.
    """
    report = FicusCheckReport()
    root_fh = volume_root_handle(store.volume)

    try:
        all_dirs = store.all_directory_handles()
    except FicusError as exc:
        report.complain(f"cannot enumerate directories: {exc}")
        return report

    dir_set = {fh.logical for fh in all_dirs}
    if root_fh not in dir_set:
        report.complain("volume root directory storage missing")
        return report

    #: directory fh -> live references observed across the replica
    dir_refs: dict[FicusFileHandle, int] = {fh: 0 for fh in dir_set}
    issued_uniques: list[int] = []
    issued_seqs: list[int] = []

    for dir_fh in sorted(dir_set, key=lambda fh: fh.to_hex()):
        report.directories_checked += 1
        try:
            entries = store.read_entries(dir_fh)
        except FicusError as exc:
            report.complain(f"dir {dir_fh}: unreadable entry file ({exc})")
            continue
        try:
            dir_aux = store.read_dir_aux(dir_fh)
        except FicusError as exc:
            report.complain(f"dir {dir_fh}: unreadable aux ({exc})")
            continue
        if dir_aux.fh != dir_fh.logical:
            report.complain(f"dir {dir_fh}: aux names {dir_aux.fh}")
        is_graft = dir_aux.etype == EntryType.GRAFT_POINT

        seen_eids = set()
        live_name_fh: set[tuple[str, FicusFileHandle]] = set()
        expected_names = {FDIR_NAME, FAUX_NAME}
        for entry in entries:
            report.entries_checked += 1
            if entry.eid in seen_eids:
                report.complain(f"dir {dir_fh}: duplicate entry id {entry.eid.encode()}")
            seen_eids.add(entry.eid)
            if entry.live:
                # two live entries with the same (name, fh) are one
                # user-level object named twice — a merge artifact that
                # reconciliation must resolve, never persist
                key = (entry.name, entry.fh.logical)
                if key in live_name_fh:
                    report.complain(
                        f"dir {dir_fh}: duplicate live entry {entry.name!r} -> {entry.fh}"
                    )
                live_name_fh.add(key)
            if entry.eid.replica_id == store.replica_id:
                issued_seqs.append(entry.eid.seq)
            if entry.fh.file_id.issuing_replica == store.replica_id:
                issued_uniques.append(entry.fh.file_id.unique)
            if entry.etype == EntryType.LOCATION:
                if not is_graft:
                    report.complain(
                        f"dir {dir_fh}: LOCATION entry {entry.name!r} outside a graft point"
                    )
                continue
            if not entry.live:
                continue
            if entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT):
                if entry.fh.logical not in dir_set:
                    report.complain(
                        f"dir {dir_fh}: live entry {entry.name!r} -> missing directory {entry.fh}"
                    )
                else:
                    dir_refs[entry.fh.logical] += 1
                continue
            # FILE / SYMLINK
            key = entry.fh.logical.to_hex()
            if store.has_file(dir_fh, entry.fh):
                expected_names.add(key)
                expected_names.add(key + AUX_SUFFIX)
                try:
                    aux = store.read_file_aux(dir_fh, entry.fh)
                except FicusError as exc:
                    report.complain(f"dir {dir_fh}: {entry.name!r} unreadable aux ({exc})")
                    continue
                if aux.fh != entry.fh.logical:
                    report.complain(
                        f"dir {dir_fh}: {entry.name!r} aux names {aux.fh}, entry names {entry.fh}"
                    )
                if aux.etype != entry.etype:
                    report.complain(
                        f"dir {dir_fh}: {entry.name!r} aux type {aux.etype} != entry {entry.etype}"
                    )
            else:
                # entry-only: contents arrive later by propagation
                report.entries_awaiting_contents += 1

        # stray-object sweep of the underlying Unix directory
        try:
            unix_dir = store.dir_unix_vnode(dir_fh)
            for dirent in unix_dir.readdir():
                name = dirent.name
                if name in (".", ".."):
                    continue
                if name in expected_names:
                    continue
                if name.endswith(SHADOW_SUFFIX):
                    continue  # in-flight propagation; scavenged on recovery
                if name.endswith(AUX_SUFFIX) or _is_handle_hex(name):
                    # storage for a dead or unknown entry: a leak
                    report.complain(f"dir {dir_fh}: stray object {name!r}")
                else:
                    report.complain(f"dir {dir_fh}: unrecognized name {name!r}")
        except FicusError as exc:
            report.complain(f"dir {dir_fh}: cannot sweep unix directory ({exc})")

    # reference counts and reachability
    for dir_fh, observed in dir_refs.items():
        if dir_fh == root_fh:
            continue
        try:
            recorded = store.read_dir_aux(dir_fh).refs
        except FicusError:
            continue  # already complained above
        if observed == 0:
            report.orphan_directories += 1
        elif recorded != observed:
            report.complain(
                f"dir {dir_fh}: aux refs={recorded} but {observed} live names observed"
            )

    # id mints must be ahead of everything issued
    meta = store._read_meta()
    next_unique = int(meta["next_unique"])
    next_seq = int(meta["next_seq"])
    if issued_uniques and max(issued_uniques) >= next_unique:
        report.complain(
            f"file-id mint behind: next_unique={next_unique}, max issued={max(issued_uniques)}"
        )
    if issued_seqs and max(issued_seqs) >= next_seq:
        report.complain(
            f"entry-id mint behind: next_seq={next_seq}, max issued={max(issued_seqs)}"
        )

    if conflict_log is not None:
        _check_conflict_bookkeeping(store, report, conflict_log, resolvers)
    return report


def _check_conflict_bookkeeping(
    store: ReplicaStore, report: FicusCheckReport, conflict_log, resolvers
) -> None:
    """Audit the conflict log against the stored replica state."""
    for conflict in conflict_log.all_reports():
        if getattr(conflict.kind, "value", conflict.kind) != "file-update":
            continue
        if conflict.volume != store.volume:
            continue
        try:
            if not store.has_file(conflict.parent_fh, conflict.fh):
                continue  # dropped, renamed away, or never propagated here
            aux = store.read_file_aux(conflict.parent_fh, conflict.fh)
        except FicusError:
            continue  # structural problems are complained about elsewhere
        if conflict.resolved:
            # a resolution installed local_vv.merge(remote_vv) (or a later
            # descendant of it), which strictly dominates both inputs of
            # the concurrent pair; anything weaker means the resolution
            # was recorded without actually superseding both histories
            for label, seen in (("local", conflict.local_vv), ("remote", conflict.remote_vv)):
                if not aux.vv.strictly_dominates(seen):
                    report.complain(
                        f"conflict on {conflict.name!r} ({conflict.fh}) marked resolved "
                        f"but current vv {aux.vv.encode() or '0'} does not strictly "
                        f"dominate {label} vv {seen.encode() or '0'}"
                    )
        elif resolvers is not None and resolvers.covers(conflict.name, aux.merge_policy):
            report.complain(
                f"resolver-covered file {conflict.name!r} ({conflict.fh}) "
                f"sits unresolved in the conflict log"
            )


def _is_handle_hex(name: str) -> bool:
    try:
        FicusFileHandle.from_hex(name)
        return True
    except FicusError:
        return False
