#!/usr/bin/env python3
"""Locality trace replay: why the dual-mapping scheme is cheap.

The early AFS prototype's dual name mapping performed badly ([19] in the
paper); Ficus argues its version is fine because the on-disk organization
parallels the name space, letting the UFS buffer cache and name cache
exploit the file-reference locality Floyd measured.  This example replays
Zipf traces of varying skew against a live Ficus host and reports disk
I/Os per open — watch the cost collapse as locality rises.

Run:  python examples/trace_replay.py
"""

from repro.sim import DaemonConfig, FicusSystem, HostConfig
from repro.workload import ZipfReferenceGenerator, hit_ratio_estimate

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

#: A deliberately small buffer cache so the working set does not fit and
#: locality (not capacity) decides the hit rate.
SMALL = HostConfig(cache_blocks=48, name_cache_size=64)


def replay(skew: float, references: int = 1500) -> tuple[float, float, float]:
    system = FicusSystem(["solo"], daemon_config=QUIET, host_config=SMALL)
    host = system.host("solo")
    fs = host.fs()

    gen = ZipfReferenceGenerator(num_directories=8, files_per_directory=12, skew=skew, seed=9)
    for directory in gen.directories:
        fs.mkdir("/" + directory)
    for ref in gen.files:
        fs.write_file("/" + ref.path, f"contents of {ref.path}".encode())

    trace = gen.trace(references)
    host.ufs.cache.invalidate_all()
    host.ufs.namecache.invalidate_all()
    before = host.device.counters.snapshot()
    for ref in trace:
        fs.read_file("/" + ref.path)
    delta = host.device.counters.delta_since(before)
    ios_per_open = delta.reads / references
    locality = hit_ratio_estimate(trace, working_set=20)
    hit_rate = host.ufs.cache.stats.hit_rate
    return locality, ios_per_open, hit_rate


def main() -> None:
    print("Zipf trace replay on one Ficus host (96 files, cold caches)\n")
    print(f"{'skew':>6} | {'locality':>9} | {'disk reads/open':>15} | {'buffer hit rate':>15}")
    print("-" * 56)
    for skew in [0.0, 0.5, 1.0, 1.5, 2.0]:
        locality, ios, hits = replay(skew)
        print(f"{skew:>6.1f} | {locality:>9.3f} | {ios:>15.3f} | {hits:>15.3f}")
    print(
        "\nHigher skew (stronger locality) -> warm caches -> the dual "
        "mapping costs almost nothing per open, matching Section 6."
    )


if __name__ == "__main__":
    main()
