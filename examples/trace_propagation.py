#!/usr/bin/env python3
"""Trace one update end to end across two hosts.

Runs a two-host deployment with telemetry enabled, partitions it so an
update must wait, heals, and lets the propagation daemon pull — then
shows that the whole flow (open -> write -> notify -> pull) is ONE trace
tree with spans in the logical, NFS, and physical layers on both hosts.

Exports the timeline as Chrome trace format; load ``ficus_trace.json``
into chrome://tracing or https://ui.perfetto.dev to see each host as a
process row and the cross-host pull aligned on the virtual-time axis.

Run:  python examples/trace_propagation.py
"""

import os

from repro.sim import FicusSystem
from repro.telemetry import Telemetry
from repro.telemetry import export

#: example artifacts land under out/, never in the repo root
OUT_DIR = "out"
TRACE_PATH = os.path.join(OUT_DIR, "ficus_trace.json")


def main() -> None:
    telemetry = Telemetry()
    system = FicusSystem(["west", "east"], telemetry=telemetry)
    west = system.host("west").fs()
    east = system.host("east").fs()

    print("== partition, update on one side ==")
    system.partition([{"west"}, {"east"}])
    west.write_file("/report.txt", b"written while east was unreachable")
    print("west wrote /report.txt; notification to east was lost")

    print("\n== heal; the daemons carry the update across ==")
    system.heal()
    west.append_file("/report.txt", b" -- and appended after the heal")
    system.run_for(120.0)
    print("east reads:", east.read_file("/report.txt"))

    # -- the single trace tree ------------------------------------------------
    tracer = telemetry.tracer
    root = next(s for s in tracer.finished if s.name == "fs.append_file")
    spans = tracer.spans(root.trace_id)
    print(f"\n== trace {root.trace_id:x}: {len(spans)} spans, one tree ==")
    print(f"   layers: {sorted({s.layer for s in spans})}")
    print(f"   hosts:  {sorted({s.host for s in spans})}")

    def show(span, depth: int = 0) -> None:
        print(f"   {'  ' * depth}{span.name}  [{span.layer}@{span.host}]  "
              f"{span.duration * 1e3:.1f}ms")
        for child in sorted(tracer.children_of(span), key=lambda s: s.start):
            show(child, depth + 1)

    show(root)

    os.makedirs(OUT_DIR, exist_ok=True)
    export.write_chrome_trace(TRACE_PATH, tracer.finished)
    print(f"\nwrote {len(list(tracer.finished))} spans to {TRACE_PATH} "
          "(open in chrome://tracing or Perfetto)")

    print("\n== what happened, as the event log saw it ==")
    print(telemetry.events.summary())

    print("\n== full telemetry digest ==")
    print(export.summary(telemetry))


if __name__ == "__main__":
    main()
