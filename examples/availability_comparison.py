#!/usr/bin/env python3
"""One-copy availability versus the classical replica-control protocols.

Runs the five policies (one-copy, primary copy, majority voting, weighted
voting, quorum consensus) against identical random partition traces and
prints read/write availability — the comparison behind the paper's claim
that "one-copy availability provides strictly greater availability than
primary copy, voting, weighted voting, and quorum consensus."

Run:  python examples/availability_comparison.py
"""

from repro.workload import AvailabilityExperiment


def main() -> None:
    print("availability vs link failure probability (5 replicas, 200 epochs)\n")
    header = f"{'p(link down)':>12} | " + " | ".join(
        f"{name:>16}" for name in ["one-copy", "primary-copy", "majority", "weighted", "quorum"]
    )
    print("WRITE availability")
    print(header)
    print("-" * len(header))
    for prob in [0.1, 0.3, 0.5, 0.7, 0.9]:
        results = AvailabilityExperiment(
            num_hosts=5, link_failure_prob=prob, epochs=200, seed=42
        ).run()
        row = [
            results["one-copy"].write_availability,
            results["primary-copy"].write_availability,
            results["majority-voting"].write_availability,
            results["weighted-voting"].write_availability,
            results["quorum-consensus"].write_availability,
        ]
        print(f"{prob:>12.1f} | " + " | ".join(f"{v:>16.3f}" for v in row))

    print("\nREAD availability")
    print(header)
    print("-" * len(header))
    for prob in [0.1, 0.3, 0.5, 0.7, 0.9]:
        results = AvailabilityExperiment(
            num_hosts=5, link_failure_prob=prob, epochs=200, seed=42
        ).run()
        row = [
            results["one-copy"].read_availability,
            results["primary-copy"].read_availability,
            results["majority-voting"].read_availability,
            results["weighted-voting"].read_availability,
            results["quorum-consensus"].read_availability,
        ]
        print(f"{prob:>12.1f} | " + " | ".join(f"{v:>16.3f}" for v in row))

    print("\nthe price of optimism: conflicts detected by one-copy (others: 0 by construction)")
    for prob in [0.1, 0.5, 0.9]:
        results = AvailabilityExperiment(
            num_hosts=5, link_failure_prob=prob, epochs=200, seed=42
        ).run()
        print(f"  p={prob:.1f}: {results['one-copy'].conflicts} conflicts over 200 epochs")


if __name__ == "__main__":
    main()
