#!/usr/bin/env python3
"""Partitioned update, conflict detection, and reconciliation.

Reproduces the paper's core scenario end to end:

1. a file replicated on three hosts;
2. the network partitions; both sides keep updating (one-copy
   availability — no quorum, no primary);
3. directory updates merge automatically after healing (including a
   same-name collision, repaired deterministically);
4. the conflicting file update is detected via version vectors and
   reported to the owner, who resolves it;
5. the resolution propagates everywhere.

Run:  python examples/partitioned_update.py
      python examples/partitioned_update.py --trace   # + telemetry dump
"""

import os
import sys

from repro.recon import resolve_file_conflict
from repro.sim import FicusSystem
from repro.telemetry import Telemetry, export


def main(trace: bool = False) -> None:
    telemetry = Telemetry() if trace else None
    system = FicusSystem(["west", "east", "mobile"], telemetry=telemetry)
    west, east = system.host("west").fs(), system.host("east").fs()

    print("== shared state before the partition ==")
    west.write_file("/shared.txt", b"the original text")
    system.run_for(30.0)
    print("east reads:", east.read_file("/shared.txt"))

    print("\n== network partitions: {west} | {east, mobile} ==")
    system.partition([{"west"}, {"east", "mobile"}])

    # both sides update the SAME file: a true conflict
    west.write_file("/shared.txt", b"edited on the west coast")
    east.write_file("/shared.txt", b"edited on the east coast")

    # both sides create the SAME new name: a directory conflict
    west.write_file("/minutes.txt", b"west's meeting minutes")
    east.write_file("/minutes.txt", b"east's meeting minutes")

    # and each side makes an uncontested change too
    west.mkdir("/west-only")
    east.mkdir("/east-only")
    print("west and east diverged while partitioned")

    print("\n== heal and let the reconciliation daemons run ==")
    system.heal()
    system.run_for(300.0)
    system.reconcile_everything()

    print("\n== directory conflicts were repaired automatically ==")
    print("west sees:", sorted(west.listdir("/")))
    print("east sees:", sorted(east.listdir("/")))
    both_minutes = [n for n in west.listdir("/") if n.startswith("minutes.txt")]
    for name in both_minutes:
        print(f"  {name}: {west.read_file('/' + name)!r}")

    print("\n== the file conflict was reported, not silently merged ==")
    for name, host in system.hosts.items():
        for report in host.conflict_log.unresolved():
            print(
                f"  {name}: CONFLICT on {report.name!r} "
                f"local={report.local_vv} remote={report.remote_vv} (from {report.remote_host})"
            )

    print("\n== the owner resolves it ==")
    owner = system.host("east")
    report = owner.conflict_log.unresolved()[0]
    volrep = next(l.volrep for l in system.root_locations if l.host == "east")
    store = owner.physical.store_for(volrep)
    resolve_file_conflict(
        store,
        report.parent_fh,
        report.fh,
        b"merged: east text + west text",
        [report.local_vv, report.remote_vv],
        owner.conflict_log,
    )
    system.run_for(300.0)
    system.reconcile_everything()
    print("west now reads:", west.read_file("/shared.txt"))
    print("east now reads:", east.read_file("/shared.txt"))
    print("unresolved conflicts:", system.total_conflicts())

    if telemetry is not None:
        os.makedirs("out", exist_ok=True)
        trace_path = os.path.join("out", "partitioned_update_trace.json")
        export.write_chrome_trace(trace_path, telemetry.tracer.finished)
        print("\n== telemetry (--trace) ==")
        print(export.summary(telemetry))
        print(f"wrote {trace_path} (open in chrome://tracing)")


if __name__ == "__main__":
    main(trace="--trace" in sys.argv[1:])
