#!/usr/bin/env python3
"""Volumes, graft points, and autografting (paper Section 4).

Builds a namespace spanning three volumes:

    /                  root volume        (replicated on all hosts)
    /projects          graft point -> projects volume (on lab1, lab2)
    /projects/archive  graft point -> archive volume  (on vault only)

and demonstrates: transparent grafting during pathname translation,
binding to whichever replica is reachable, regrafting after a partition,
and quiet pruning of idle grafts.

Run:  python examples/volume_grafting.py
"""

from repro.sim import FicusSystem


def main() -> None:
    system = FicusSystem(["lab1", "lab2", "vault"])
    lab1 = system.host("lab1")
    fs = lab1.fs()

    print("== build the volume DAG ==")
    projects_vol, projects_locs = system.create_volume(["lab1", "lab2"])
    archive_vol, archive_locs = system.create_volume(["vault"])
    lab1.logical.create_graft_point(lab1.root(), "projects", projects_vol, projects_locs)
    projects_dir = lab1.root().lookup("projects")
    lab1.logical.create_graft_point(projects_dir, "archive", archive_vol, archive_locs)
    print(f"projects volume {projects_vol} on lab1+lab2")
    print(f"archive  volume {archive_vol} on vault")

    print("\n== pathname translation crosses graft points transparently ==")
    fs.makedirs("/projects/ficus")
    fs.write_file("/projects/ficus/README", b"a replicated file system")
    fs.write_file("/projects/archive/1989.tar", b"old bits")
    print("tree from lab1:", fs.walk_tree())
    print("active grafts on lab1:", lab1.logical.grafter.active_grafts)

    print("\n== the graft point itself replicates like any directory ==")
    system.run_for(120.0)
    system.reconcile_everything()
    lab2_fs = system.host("lab2").fs()
    print("lab2 reads:", lab2_fs.read_file("/projects/ficus/README"))

    print("\n== graft binds whichever replica is reachable ==")
    system.partition([{"lab1", "vault"}, {"lab2"}])
    lab1.logical.grafter.ungraft(projects_vol)  # force a fresh graft
    fs.read_file("/projects/ficus/README")
    bound = lab1.logical.grafter.current(projects_vol).bound
    print(f"with lab2 cut off, lab1 bound the projects volume at {bound.host}")

    system.partition([{"lab2", "vault"}, {"lab1"}])
    lab2 = system.host("lab2")
    lab2.logical.grafter.ungraft(projects_vol)
    lab2_fs.read_file("/projects/ficus/README")
    bound2 = lab2.logical.grafter.current(projects_vol).bound
    print(f"with lab1 cut off, lab2 bound the projects volume at {bound2.host}")
    system.heal()

    print("\n== idle grafts are quietly pruned, then regrafted on demand ==")
    before = lab1.logical.grafter.active_grafts
    system.clock.advance(7200.0)  # two idle hours
    pruned = lab1.graft_prune_daemon.tick()
    print(f"pruned {pruned} of {before} grafts after idling")
    print("reading through the pruned graft regrafts automatically:")
    print("  ", fs.read_file("/projects/ficus/README"))
    print("grafts performed in total:", lab1.logical.grafter.grafts_performed)


if __name__ == "__main__":
    main()
