#!/usr/bin/env python3
"""A week of distributed teamwork on Ficus — the paper's motivating world.

The intro imagines "a transparent, reliable, distributed file system
encompassing a million hosts geographically dispersed across the
continent" where "partial operation is the normal, not exceptional,
status".  This example plays out that world at desk scale:

* a five-host deployment (two offices + a laptop),
* a shared project volume replicated in both offices,
* a selective "cache" replica on the laptop (text only, no binaries),
* a workweek of edits punctuated by outages, a laptop gone roaming,
  conflicting edits, and an office host crash —
* and at the end, one converged, conflict-free namespace.

Run:  python examples/team_workflow.py
"""

from repro.physical.policy import GlobPolicy
from repro.recon import resolve_file_conflict
from repro.sim import DaemonConfig, FicusSystem


def main() -> None:
    hosts = ["la-1", "la-2", "ny-1", "ny-2", "laptop"]
    system = FicusSystem(
        hosts,
        root_volume_hosts=["la-1", "ny-1", "laptop"],
        daemon_config=DaemonConfig(propagation_period=5.0, recon_period=60.0),
    )
    # the laptop replica only keeps text; binaries stay entry-only there
    laptop_volrep = next(l.volrep for l in system.root_locations if l.host == "laptop")
    system.host("laptop").physical.set_storage_policy(
        laptop_volrep, GlobPolicy(include=("*.txt", "*.md", "*.py"))
    )

    la = system.host("la-1").fs()
    ny = system.host("ny-1").fs()
    laptop = system.host("laptop").fs()

    print("== Monday: the LA office seeds the project ==")
    la.makedirs("/ficus/src")
    la.write_file("/ficus/README.md", b"# Ficus\nOptimistic replication.\n")
    la.write_file("/ficus/src/main.py", b"print('hello')\n")
    la.write_file("/ficus/build.bin", b"\x7fELF" + b"\x00" * 500)
    system.run_for(300.0)
    print("NY reads README:", ny.read_file("/ficus/README.md").decode().splitlines()[0])

    print("\n== Tuesday: the transcontinental link fails; both coasts work on ==")
    system.partition([{"la-1", "la-2"}, {"ny-1", "ny-2", "laptop"}])
    la.write_file("/ficus/src/parser.py", b"# LA's new parser\n")
    ny.write_file("/ficus/src/network.py", b"# NY's networking\n")
    # ...and both coasts edit the SAME file: a conflict brews
    la.write_file("/ficus/README.md", b"# Ficus (LA edition)\n")
    ny.write_file("/ficus/README.md", b"# Ficus (NY edition)\n")
    print("LA and NY both kept working — one-copy availability")

    print("\n== Wednesday: the link heals; reconciliation merges the work ==")
    system.heal()
    system.run_for(600.0)
    system.reconcile_everything()
    print("merged tree at NY:", sorted(n for n in ny.listdir("/ficus/src")))
    conflicts = [r for h in system.hosts.values() for r in h.conflict_log.unresolved()]
    print(f"{len(set((r.name) for r in conflicts))} conflicting file(s) reported:",
          sorted({r.name for r in conflicts}))

    print("\n== Thursday: the owner resolves the README conflict ==")
    owner = system.host("ny-1")
    report = owner.conflict_log.unresolved()[0]
    volrep = next(l.volrep for l in system.root_locations if l.host == "ny-1")
    resolve_file_conflict(
        owner.physical.store_for(volrep),
        report.parent_fh,
        report.fh,
        b"# Ficus (merged: LA + NY)\n",
        [report.local_vv, report.remote_vv],
        owner.conflict_log,
    )
    system.run_for(600.0)
    system.reconcile_everything()
    print("LA now reads:", la.read_file("/ficus/README.md").decode().strip())
    print("unresolved conflicts:", system.total_conflicts())

    print("\n== Friday: laptop goes roaming; ny-1 crashes; life goes on ==")
    system.partition([{"laptop"}, {"la-1", "la-2", "ny-1", "ny-2"}])
    print("roaming laptop reads main.py:", laptop.read_file("/ficus/src/main.py").decode().strip())
    try:
        laptop.read_file("/ficus/build.bin")
    except Exception as exc:
        print(f"laptop never stored build.bin (selective replica): {type(exc).__name__}")
    laptop.write_file("/ficus/notes.txt", b"ideas from the train\n")
    system.heal()
    system.host("ny-1").crash()
    la.write_file("/ficus/src/fix.py", b"# made while ny-1 was down\n")
    system.host("ny-1").restart(system)
    system.run_for(600.0)
    system.reconcile_everything()

    print("\n== the weekend audit: everything converged ==")
    trees = {name: sorted(system.host(name).fs().walk_tree()) for name in ["la-1", "ny-1"]}
    assert trees["la-1"] == trees["ny-1"], "offices diverged!"
    print("la-1 and ny-1 agree on", len(trees["la-1"]), "paths")
    print("ny-1 reads the train notes:", ny.read_file("/ficus/notes.txt").decode().strip())
    from repro.physical import ficus_fsck

    for name, host in system.hosts.items():
        for volrep, store in host.physical.stores.items():
            report = ficus_fsck(store)
            assert report.clean, report.problems
    print("ficus-fsck clean on every replica")


if __name__ == "__main__":
    main()
