#!/usr/bin/env python3
"""Trace-driven scenarios: a whole experiment as a data file.

Synthesizes a mixed read/write/partition trace, saves it in the plain-text
trace format, replays it against a fresh cluster, and audits the result —
the trace-driven methodology of the Floyd studies the paper builds on.

Run:  python examples/scenario_replay.py
"""

from repro.inspect import cluster_summary
from repro.physical import ficus_fsck
from repro.sim import FicusSystem
from repro.workload import decode_trace, encode_trace, replay_trace, synthesize_trace

HOSTS = ["h1", "h2", "h3"]


def main() -> None:
    print("== synthesize a 20-virtual-minute trace ==")
    ops = synthesize_trace(
        HOSTS,
        duration=1200.0,
        ops_per_minute=20.0,
        write_fraction=0.5,
        partition_prob_per_minute=0.4,
        seed=7,
    )
    text = encode_trace(ops)
    kinds = {}
    for op in ops:
        kinds[op.op] = kinds.get(op.op, 0) + 1
    print(f"{len(ops)} operations: {kinds}")
    print("first lines of the trace file:")
    for line in text.splitlines()[:4]:
        print("   ", line)

    print("\n== replay against a fresh cluster (daemons running) ==")
    system = FicusSystem(HOSTS)
    result = replay_trace(system, decode_trace(text))
    print(
        f"applied={result.applied} failed={result.failed} "
        f"(reads that hit a partition window: expected and tolerated)"
    )
    for op, why in result.failures[:3]:
        print(f"   e.g. t={op.at:7.1f} {op.op} {op.path} on {op.host}: {why}")

    print("\n== settle and audit ==")
    system.heal()
    system.run_for(300.0)
    system.reconcile_everything()
    trees = {h: sorted(system.host(h).fs().walk_tree()) for h in HOSTS}
    assert trees["h1"] == trees["h2"] == trees["h3"], "replicas diverged!"
    print(f"all hosts agree on {len(trees['h1'])} paths")
    for host in system.hosts.values():
        for store in host.physical.stores.values():
            assert ficus_fsck(store).clean
    print("ficus-fsck clean everywhere\n")
    print(cluster_summary(system))


if __name__ == "__main__":
    main()
