#!/usr/bin/env python3
"""Quickstart: a three-host Ficus cluster in a few lines.

Builds the full stack of the paper's Figure 2 on each simulated host
(UFS -> Ficus physical -> NFS -> Ficus logical), writes files on one host,
and watches update notification + the propagation daemon carry them to the
others.

Run:  python examples/quickstart.py
"""

from repro.sim import FicusSystem


def main() -> None:
    # Three hosts; the root volume is replicated on all of them, and each
    # host runs propagation + reconciliation daemons on the virtual clock.
    system = FicusSystem(["ficus1", "ficus2", "ficus3"])

    fs1 = system.host("ficus1").fs()
    fs2 = system.host("ficus2").fs()

    print("== create files on ficus1 ==")
    fs1.makedirs("/home/guy")
    fs1.write_file("/home/guy/paper.tex", b"\\title{Ficus}")
    fs1.write_file("/home/guy/notes.txt", b"optimistic replication wins")
    print("ficus1 sees:", fs1.walk_tree())

    # The logical layer multicast update notifications; run the virtual
    # clock so each host's propagation daemon pulls the new versions.
    system.run_for(30.0)

    print("\n== read the same files on ficus2 (served by its own replica) ==")
    print("/home/guy/paper.tex =", fs2.read_file("/home/guy/paper.tex"))
    print("/home/guy/notes.txt =", fs2.read_file("/home/guy/notes.txt"))

    print("\n== update on ficus2, observe on ficus3 ==")
    with fs2.open("/home/guy/notes.txt", "a") as f:
        f.write(b"\n(edited on ficus2)")
    system.run_for(30.0)
    fs3 = system.host("ficus3").fs()
    print("ficus3 reads:", fs3.read_file("/home/guy/notes.txt"))

    print("\n== one-copy availability: keep working while partitioned ==")
    system.partition([{"ficus1"}, {"ficus2", "ficus3"}])
    fs1.write_file("/home/guy/offline.txt", b"written while cut off")
    print("ficus1 wrote /home/guy/offline.txt during the partition")
    system.heal()
    system.run_for(120.0)  # periodic reconciliation converges the replicas
    print("ficus3 reads it after healing:", fs3.read_file("/home/guy/offline.txt"))

    print("\n== bookkeeping ==")
    for name, host in system.hosts.items():
        stats = host.propagation_daemon.stats
        print(
            f"{name}: pulls={stats.pulls_succeeded} bytes={stats.bytes_copied} "
            f"recon-runs={host.recon_daemon.stats.runs} "
            f"conflicts={len(host.conflict_log.unresolved())}"
        )
    net = system.network.stats
    print(f"network: rpcs={net.rpcs_sent} datagrams={net.datagrams_sent} lost={net.datagrams_lost}")


if __name__ == "__main__":
    main()
