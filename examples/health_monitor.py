#!/usr/bin/env python3
"""The consistency observability plane, end to end.

Walks the life cycle an operator sees through ``ficus_top``:

1. a healthy three-host cluster — every gauge at zero;
2. a partition plus an update — the writing host immediately suspects
   the replica hosts its notification could not reach, and a checked
   read comes back flagged ``divergence_suspected``;
3. reconciliation daemons ticking against the unreachable peers —
   staleness grows, so an SLO like "no peer more than N rounds behind"
   is directly checkable;
4. an injected anomaly — the flight recorder freezes its ring of recent
   vnode operations into a JSONL dump;
5. heal + reconcile — suspicion clears, and the dump renders offline
   exactly as ``python -m repro.tools.ficus_top dump.jsonl`` would show
   it after a failed chaos run.

Run:  python examples/health_monitor.py
"""

import tempfile
from pathlib import Path

from repro.sim import FicusSystem
from repro.tools.ficus_top import render_dump, render_system


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 64 - len(text)))


def main() -> None:
    system = FicusSystem(["alpha", "beta", "gamma"])
    fs = system.host("alpha").fs()
    fs.mkdir("/project")
    fs.write_file("/project/notes", b"first draft")
    system.reconcile_everything()
    for name in system.hosts:  # service queued new-version notes
        system.host(name).propagation_daemon.tick()

    banner("converged cluster: nothing suspected")
    print(render_system(system))

    banner("partition {alpha} | {beta, gamma}, then a write on alpha")
    system.partition([{"alpha"}, {"beta", "gamma"}])
    fs.write_file("/project/notes", b"partitioned edit")
    for _ in range(3):  # staleness: three recon rounds fail to reach anyone
        system.host("alpha").recon_daemon.tick()
    print(render_system(system))

    checked = fs.read_file_checked("/project/notes")
    print(
        f"\nchecked read: {checked.data!r} "
        f"(divergence_suspected={checked.divergence_suspected})"
    )

    banner("anomaly fires: the flight recorder dumps its ring")
    plane = system.host("alpha").health_plane
    with tempfile.TemporaryDirectory() as tmp:
        plane.recorder.dump_dir = tmp
        plane.anomaly("fsck_violation", note="demo: operator-injected")
        dump_path = plane.recorder.dump_paths[-1]
        print(f"wrote {Path(dump_path).name}")

        banner("heal + reconcile: suspicion clears")
        system.heal()
        system.reconcile_everything()
        print(render_system(system))
        checked = fs.read_file_checked("/project/notes")
        print(
            f"\nchecked read: {checked.data!r} "
            f"(divergence_suspected={checked.divergence_suspected})"
        )

        banner("the dump still renders offline (ficus_top dump.jsonl)")
        print(render_dump(dump_path, ops_shown=8))


if __name__ == "__main__":
    main()
